#include "src/fleet/fleet_controller.h"

#include <time.h>

#include <algorithm>
#include <chrono>

namespace spotcache::fleet {

namespace {

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepWall(Duration d) {
  if (d <= Duration::Micros(0)) {
    return;
  }
  timespec ts{};
  ts.tv_sec = d.micros() / 1'000'000;
  ts.tv_nsec = (d.micros() % 1'000'000) * 1000;
  ::nanosleep(&ts, nullptr);
}

constexpr std::string_view kMarket = "fleet";

}  // namespace

FleetController::FleetController(const FleetControllerConfig& config,
                                 FleetView* view, EventTracer* tracer)
    : config_(config), view_(view), tracer_(tracer),
      supervisor_(config.supervisor) {}

FleetController::~FleetController() { StopFleet(); }

int64_t FleetController::DrillNowUs(int64_t epoch_us) const {
  return WallUs() - epoch_us;
}

SimTime FleetController::TraceNow(int64_t epoch_us) const {
  return SimTime::FromMicros(DrillNowUs(epoch_us));
}

void FleetController::SleepUntil(int64_t epoch_us, Duration at) {
  const int64_t remaining = at.micros() - DrillNowUs(epoch_us);
  if (remaining > 0) {
    SleepWall(Duration::Micros(remaining));
  }
}

bool FleetController::StartFleet(std::string* error) {
  const std::vector<std::string> server_args = {
      "--port=0", "--capacity-mb=" + std::to_string(config_.capacity_mb)};

  SpawnResult backup = supervisor_.Spawn("backup", server_args);
  if (!backup.ok) {
    *error = "backup launch failed: " + backup.error;
    return false;
  }
  backup_ = backup.process;
  backup_started_ = true;
  view_->SetBackup("127.0.0.1", backup_.port);

  primaries_.clear();
  for (int slot = 0; slot < config_.primaries; ++slot) {
    SpawnResult r =
        supervisor_.Spawn("primary-" + std::to_string(slot), server_args);
    if (!r.ok) {
      *error = "primary " + std::to_string(slot) +
               " launch failed: " + r.error;
      return false;
    }
    primaries_.push_back(r.process);
    view_->SetNode(static_cast<uint64_t>(slot), "127.0.0.1", r.process.port);
    if (tracer_ != nullptr) {
      tracer_->Launched(SimTime(), static_cast<uint64_t>(slot), kMarket,
                        "process", r.process.label);
    }
  }
  return true;
}

void FleetController::StopFleet() {
  for (auto& p : primaries_) {
    if (p.pid > 0) {
      supervisor_.Terminate(p);
    }
  }
  if (backup_started_ && backup_.pid > 0) {
    supervisor_.Terminate(backup_);
  }
}

void FleetController::ExecuteAction(const KillAction& action,
                                    const HotKeysFn& hot_keys,
                                    int64_t epoch_us, RecoveryRecord* record) {
  const int slot = action.slot;
  record->slot = slot;
  record->warned = action.warned;
  record->planned_kill_at = action.kill_at;
  record->old_port = primaries_[slot].port;

  ServerProcess replacement;
  bool replacement_spawned = false;
  Duration ready_at;  // drill-relative readiness (spawn + modeled boot)

  // --- Warning window: deliver the (possibly shortened) notice and start
  // the replacement booting, exactly what the paper's controller does on a
  // two-minute warning. ---
  if (action.warned) {
    const Duration warn_at = action.kill_at - action.warning_lead;
    SleepUntil(epoch_us, warn_at);
    record->warning_us = DrillNowUs(epoch_us);
    if (tracer_ != nullptr) {
      tracer_->RevocationWarning(TraceNow(epoch_us),
                                 static_cast<uint64_t>(slot), kMarket,
                                 action.late);
    }
    SpawnResult r = supervisor_.Spawn(
        "replacement-" + std::to_string(slot),
        {"--port=0", "--capacity-mb=" + std::to_string(config_.capacity_mb)});
    record->spawn_attempts = r.attempts;
    if (r.ok) {
      replacement = r.process;
      replacement_spawned = true;
      ready_at = Duration::Micros(DrillNowUs(epoch_us)) +
                 config_.replacement_boot_delay;
    } else if (tracer_ != nullptr) {
      tracer_->LaunchFailed(TraceNow(epoch_us), "process",
                            "replacement-" + std::to_string(slot));
    }
  }

  // --- Case 1a: the replacement finished booting before the deadline, so
  // warm-up runs inside the warning window, against a still-live primary. ---
  const bool ready_before_kill =
      replacement_spawned && ready_at <= action.kill_at;
  if (ready_before_kill) {
    SleepUntil(epoch_us, ready_at);
    record->replacement_ready_us = DrillNowUs(epoch_us);
    record->case_label = "1a";
    const auto keys = hot_keys(slot);
    record->warmup_start_us = DrillNowUs(epoch_us);
    if (tracer_ != nullptr) {
      tracer_->WarmupStart(TraceNow(epoch_us), static_cast<uint64_t>(slot),
                           "1a", 0.0, 0.0, TraceNow(epoch_us));
    }
    WarmupStreamer streamer(config_.warmup);
    record->warmup = streamer.Stream("127.0.0.1", backup_.port, "127.0.0.1",
                                     replacement.port, keys);
    record->warmup_end_us = DrillNowUs(epoch_us);
    if (tracer_ != nullptr) {
      tracer_->WarmupEnd(TraceNow(epoch_us), static_cast<uint64_t>(slot),
                         "1a");
    }
  }

  // --- The deadline: SIGKILL, no grace. ---
  SleepUntil(epoch_us, action.kill_at);
  supervisor_.Kill(primaries_[slot]);
  record->kill_us = DrillNowUs(epoch_us);
  if (tracer_ != nullptr) {
    tracer_->Revocation(TraceNow(epoch_us), static_cast<uint64_t>(slot),
                        kMarket);
  }

  if (ready_before_kill) {
    // Warm replacement takes over immediately: swap the slot's endpoint.
    view_->SetNode(static_cast<uint64_t>(slot), "127.0.0.1",
                     replacement.port);
    primaries_[slot] = replacement;
    record->new_port = replacement.port;
    record->replacement_ok = true;
    return;
  }

  // Dead slot until the replacement is warm: force the breaker open so
  // traffic degrades to the backup instead of discovering the corpse.
  view_->MarkDead(static_cast<uint64_t>(slot));

  // --- Case 2: no warning — the spawn starts only now. ---
  if (!action.warned) {
    SpawnResult r = supervisor_.Spawn(
        "replacement-" + std::to_string(slot),
        {"--port=0", "--capacity-mb=" + std::to_string(config_.capacity_mb)});
    record->spawn_attempts = r.attempts;
    if (r.ok) {
      replacement = r.process;
      replacement_spawned = true;
      ready_at = Duration::Micros(DrillNowUs(epoch_us)) +
                 config_.replacement_boot_delay;
    } else if (tracer_ != nullptr) {
      tracer_->LaunchFailed(TraceNow(epoch_us), "process",
                            "replacement-" + std::to_string(slot));
    }
  }

  if (!replacement_spawned) {
    // Launch exhausted: the slot stays degraded (breaker open, backup
    // serving hot keys) — graceful degradation, not a crash.
    if (tracer_ != nullptr) {
      tracer_->ReplacementFailed(TraceNow(epoch_us),
                                 static_cast<uint64_t>(slot));
    }
    return;
  }

  record->case_label = action.warned ? "1b" : "2";

  // --- Boot completes; stream the backup's hot items to the replacement. ---
  SleepUntil(epoch_us, ready_at);
  record->replacement_ready_us = DrillNowUs(epoch_us);
  if (tracer_ != nullptr) {
    tracer_->Launched(TraceNow(epoch_us), static_cast<uint64_t>(slot), kMarket,
                      "process", replacement.label);
  }
  const auto keys = hot_keys(slot);
  record->warmup_start_us = DrillNowUs(epoch_us);
  if (tracer_ != nullptr) {
    tracer_->WarmupStart(TraceNow(epoch_us), static_cast<uint64_t>(slot),
                         record->case_label, 0.0, 0.0, TraceNow(epoch_us));
  }
  WarmupStreamer streamer(config_.warmup);
  record->warmup = streamer.Stream("127.0.0.1", backup_.port, "127.0.0.1",
                                   replacement.port, keys);
  record->warmup_end_us = DrillNowUs(epoch_us);
  if (tracer_ != nullptr) {
    tracer_->WarmupEnd(TraceNow(epoch_us), static_cast<uint64_t>(slot),
                       record->case_label);
  }

  // Only now does the replacement join the ring (backup-serves-until-warm).
  view_->SetNode(static_cast<uint64_t>(slot), "127.0.0.1", replacement.port);
  primaries_[slot] = replacement;
  record->new_port = replacement.port;
  record->replacement_ok = true;
}

std::vector<RecoveryRecord> FleetController::ExecuteSchedule(
    const KillSchedule& schedule, const HotKeysFn& hot_keys,
    int64_t epoch_us) {
  std::vector<RecoveryRecord> records;
  records.reserve(schedule.actions.size());
  for (const KillAction& action : schedule.actions) {
    RecoveryRecord record;
    ExecuteAction(action, hot_keys, epoch_us, &record);
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace spotcache::fleet
