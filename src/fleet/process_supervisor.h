// ProcessSupervisor: fork/exec real spotcache_server children and manage
// their lifecycle — the "node launch = process spawn" half of fleet mode.
//
// Launch is a readiness-line handshake: the child's stdout is piped back and
// the supervisor blocks (with a deadline) until the machine-readable
// `listening <port>` line appears, so --port=0 ephemeral-port launches never
// race listen(2). A launch that times out or whose child exits early is
// killed, reaped, and retried on the src/resilience RetryPolicy schedule
// (wall-clock-scaled delays); the bind-failure exit code (3, see
// spotcache_server --help) is surfaced distinctly so "port taken" is not
// misdiagnosed as a crash loop.
//
// Revocation is the other half: Kill() is an immediate SIGKILL — the spot
// market does not call destructors — while Terminate() is the graceful
// SIGTERM path used for drill teardown. Both reap the child and record its
// exit status.

#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/resilience/retry_policy.h"
#include "src/util/time.h"

namespace spotcache::fleet {

/// spotcache_server's documented exit code for "could not bind the port".
constexpr int kServerBindFailureExit = 3;

enum class ProcessState : uint8_t {
  kReady,    // readiness line seen; process presumed serving
  kKilled,   // SIGKILLed by the supervisor and reaped
  kExited,   // exited on its own (or via Terminate) and reaped
};

std::string_view ToString(ProcessState s);

/// One live (or reaped) server child.
struct ServerProcess {
  pid_t pid = -1;
  uint16_t port = 0;      // parsed from the readiness line
  int stdout_fd = -1;     // read end of the child's stdout pipe (owned)
  ProcessState state = ProcessState::kReady;
  int exit_status = 0;    // raw waitpid status once reaped
  std::string label;      // caller-visible name ("primary-0", "backup", ...)
};

struct SupervisorConfig {
  /// Path to the spotcache_server binary.
  std::string server_binary;
  /// Extra argv entries appended to every launch (e.g. "--capacity-mb=8").
  std::vector<std::string> base_args;
  /// Wall-clock deadline for the readiness line on each attempt.
  Duration launch_timeout = Duration::Seconds(5);
  /// Launch retry schedule; Duration values are interpreted as wall time.
  /// Defaults are drill-scale (milliseconds), not control-loop-scale.
  RetryPolicyConfig retry{.initial_delay = Duration::Millis(50),
                          .backoff_factor = 2.0,
                          .max_delay = Duration::Millis(500),
                          .max_attempts = 3,
                          .jitter = 0.25,
                          .deadline = Duration()};
  uint64_t seed = 0;
};

struct SpawnResult {
  bool ok = false;
  ServerProcess process;  // valid when ok
  int attempts = 0;       // launches tried (1 = first attempt succeeded)
  bool bind_failure = false;  // a child exited with kServerBindFailureExit
  std::string error;      // set when !ok
};

class ProcessSupervisor {
 public:
  explicit ProcessSupervisor(const SupervisorConfig& config);

  /// Launches one child with `extra_args` appended after the base args,
  /// retrying failed launches on the RetryPolicy schedule. Blocks until
  /// ready, exhausted, or a non-retryable failure (missing binary).
  SpawnResult Spawn(const std::string& label,
                    const std::vector<std::string>& extra_args = {});

  /// SIGKILL + reap. Idempotent on already-reaped processes.
  void Kill(ServerProcess& process);

  /// SIGTERM, wait up to `grace` (wall time) for exit, escalate to SIGKILL.
  /// Returns the raw exit status.
  int Terminate(ServerProcess& process, Duration grace = Duration::Seconds(2));

  /// Drains any buffered child stdout (non-blocking) and returns it. Keeps
  /// the pipe open; call after reap to collect shutdown output.
  std::string DrainOutput(ServerProcess& process);

  int64_t spawned() const { return spawned_; }
  int64_t killed() const { return killed_; }
  int64_t launch_failures() const { return launch_failures_; }

 private:
  /// One fork/exec + readiness wait. On failure the child (if any) is dead
  /// and reaped before returning.
  bool SpawnOnce(const std::string& label,
                 const std::vector<std::string>& extra_args,
                 ServerProcess* out, bool* bind_failure, std::string* error);
  void Reap(ServerProcess& process, ProcessState final_state);

  SupervisorConfig config_;
  RetryPolicy retry_;
  uint64_t spawn_counter_ = 0;  // op_id for the retry policy
  int64_t spawned_ = 0;
  int64_t killed_ = 0;
  int64_t launch_failures_ = 0;
};

}  // namespace spotcache::fleet
