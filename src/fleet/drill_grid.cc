#include "src/fleet/drill_grid.h"

#include <cstdio>

#include "src/exec/thread_pool.h"

namespace spotcache::fleet {

namespace {

std::string CellLabel(const DrillGridCell& cell) {
  if (!cell.label.empty()) {
    return cell.label;
  }
  std::string label = "seed" + std::to_string(cell.seed) + "/" +
                      std::to_string(cell.storms) +
                      (cell.storms == 1 ? " storm" : " storms");
  label += cell.missed_warning_fraction >= 0.5 ? "/unwarned" : "/warned";
  return label;
}

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

std::vector<DrillGridCell> DefaultDrillGrid(const FleetDrillConfig& base) {
  std::vector<DrillGridCell> cells;
  const int heavy_storms = std::max(2, base.primaries);
  for (const uint64_t seed : {base.seed, base.seed + 1}) {
    for (const int storms : {1, heavy_storms}) {
      for (const double missed : {0.0, 1.0}) {
        DrillGridCell cell;
        cell.seed = seed;
        cell.storms = storms;
        cell.missed_warning_fraction = missed;
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

std::vector<DrillGridRow> RunDrillGrid(const FleetDrillConfig& base,
                                       const std::vector<DrillGridCell>& cells,
                                       const DrillCostModel& cost,
                                       int threads) {
  std::vector<DrillGridRow> rows(cells.size());

  auto run_cell = [&](size_t i) {
    FleetDrillConfig config = base;
    config.seed = cells[i].seed;
    config.scenario.storm_count = cells[i].storms;
    config.scenario.missed_warning_fraction =
        cells[i].missed_warning_fraction;

    DrillGridRow& row = rows[i];
    row.cell = cells[i];
    row.cell.label = CellLabel(cells[i]);
    row.report = RunFleetDrill(config);

    const double primaries = static_cast<double>(config.primaries);
    row.fleet_cost_hr = primaries * cost.spot_hr + cost.burstable_hr +
                        (row.report.via_proxy ? cost.proxy_hr : 0.0);
    // The on-demand baseline needs no backup tier (on-demand nodes are not
    // revoked), but a proxy tier fronts either fleet.
    row.on_demand_cost_hr = (primaries + 1.0) * cost.on_demand_hr +
                            (row.report.via_proxy ? cost.proxy_hr : 0.0);
    row.savings_fraction =
        row.on_demand_cost_hr <= 0.0
            ? 0.0
            : 1.0 - row.fleet_cost_hr / row.on_demand_cost_hr;
  };

  if (threads <= 1) {
    for (size_t i = 0; i < cells.size(); ++i) {
      run_cell(i);
    }
  } else {
    ThreadPool pool(threads);
    ParallelFor(pool, cells.size(), run_cell);
  }
  return rows;
}

std::string RenderDrillGridMarkdown(const std::vector<DrillGridRow>& rows) {
  const bool via_proxy = !rows.empty() && rows[0].report.via_proxy;
  std::string out;
  out += via_proxy
             ? "| cell | $/h (spot+backup+proxy) | $/h (on-demand) | saved | "
               "pre-kill hit | final hit | recovered | p99 (ms) | "
               "conn errors |\n|---|---|---|---|---|---|---|---|---|\n"
             : "| cell | $/h (spot+backup) | $/h (on-demand) | saved | "
               "pre-kill hit | final hit | recovered | conn errors |\n"
               "|---|---|---|---|---|---|---|---|\n";
  for (const DrillGridRow& row : rows) {
    const FleetDrillReport& r = row.report;
    out += "| " + row.cell.label + " | " + Fmt("%.3f", row.fleet_cost_hr) +
           " | " + Fmt("%.3f", row.on_demand_cost_hr) + " | " +
           Fmt("%.0f%%", row.savings_fraction * 100.0) + " | " +
           Fmt("%.3f", r.pre_kill_hit_rate) + " | " +
           Fmt("%.3f", r.final_hit_rate) + " | ";
    if (!r.ok) {
      out += "error";
    } else if (r.recovered) {
      out += r.recovered_us >= 0
                 ? "yes @" + std::to_string(r.recovered_us / 1000) + "ms"
                 : "yes";
    } else {
      out += "no";
    }
    if (via_proxy) {
      const uint64_t conn_errors =
          r.loadgen.failed_conns + r.loadgen.abandoned;
      out += " | " + Fmt("%.2f", r.loadgen.latency.p99_us / 1000.0) + " | " +
             std::to_string(conn_errors);
    } else {
      out += " | " + std::to_string(r.router_stats.conn_errors_surfaced);
    }
    out += " |\n";
  }
  return out;
}

}  // namespace spotcache::fleet
