#include "src/fleet/fleet_router.h"

#include <chrono>

#include "src/routing/hash.h"

namespace spotcache::fleet {

namespace {

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool TransportFailed(net::NetClientError e) {
  return e != net::NetClientError::kNone;
}

}  // namespace

FleetRouter::FleetRouter(const FleetRouterConfig& config, EventTracer* tracer)
    : config_(config), tracer_(tracer), epoch_us_(WallUs()) {}

SimTime FleetRouter::Now() const {
  return SimTime::FromMicros(WallUs() - epoch_us_);
}

void FleetRouter::SetNode(uint64_t slot, const std::string& host,
                          uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  Node& node = nodes_[slot];
  node.host = host;
  node.port = port;
  node.client.Close();
  node.connected = false;
  // A replacement is a fresh process: it earns a fresh breaker. (The old
  // process's failure history describes a corpse, not this endpoint.)
  node.breaker = std::make_unique<CircuitBreaker>(config_.breaker,
                                                  config_.seed, slot);
  ring_.SetNode(slot, 1.0);
}

void FleetRouter::SetBackup(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  backup_.emplace();
  backup_->host = host;
  backup_->port = port;
  // Slot id ~0 keeps the backup's breaker jitter decorrelated from primaries.
  backup_->breaker = std::make_unique<CircuitBreaker>(config_.breaker,
                                                      config_.seed, ~0ULL);
}

void FleetRouter::MarkDead(uint64_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(slot);
  if (it == nodes_.end()) {
    return;
  }
  Node& node = it->second;
  node.client.Close();
  node.connected = false;
  const SimTime now = Now();
  const BreakerState before = node.breaker->state(now);
  // Enough consecutive failures to trip regardless of threshold config.
  for (int i = 0; i < config_.breaker.failure_threshold; ++i) {
    node.breaker->RecordFailure(now);
  }
  TraceBreaker(slot, before, node.breaker->state(now));
}

bool FleetRouter::EnsureConnected(Node& node) {
  if (node.connected && node.client.connected()) {
    return true;
  }
  node.connected =
      node.client.Connect(node.host, node.port, config_.op_timeout_ms);
  return node.connected;
}

bool FleetRouter::HandleTransportFailure(Node& node, uint64_t slot) {
  const SimTime now = Now();
  const BreakerState before = node.breaker->state(now);
  node.breaker->RecordFailure(now);
  ++stats_.conn_failures_absorbed;
  node.connected = false;
  if (node.client.Reconnect(config_.reconnect)) {
    ++stats_.reconnects;
    node.connected = true;
  }
  TraceBreaker(slot, before, node.breaker->state(Now()));
  return node.connected;
}

void FleetRouter::TraceBreaker(uint64_t slot, BreakerState before,
                               BreakerState after) {
  if (tracer_ != nullptr && before != after) {
    tracer_->BreakerTransition(Now(), slot, ToString(before), ToString(after));
  }
}

std::optional<uint64_t> FleetRouter::OwnerOf(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.NodeFor(HashString(key));
}

RoutedGet FleetRouter::Get(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  RoutedGet out;

  const auto owner = ring_.NodeFor(HashString(key));
  Node* primary = nullptr;
  if (owner.has_value()) {
    auto it = nodes_.find(*owner);
    if (it != nodes_.end()) {
      primary = &it->second;
    }
  }

  // --- Primary leg, breaker-gated. ---
  if (primary != nullptr) {
    const SimTime now = Now();
    if (!config_.breakers_enabled || primary->breaker->Allow(now)) {
      const BreakerState before = primary->breaker->state(now);
      bool transport_failed = false;
      if (EnsureConnected(*primary)) {
        const auto got = primary->client.Get(key);
        if (got.found) {
          primary->breaker->RecordSuccess(Now());
          TraceBreaker(*owner, before, primary->breaker->state(Now()));
          ++stats_.hits;
          out.outcome = RouteOutcome::kHit;
          out.value = got.value;
          return out;
        }
        if (!TransportFailed(primary->client.last_error())) {
          // Clean miss from a live primary: definitive, no fallback (the
          // backup only holds hot copies; a primary miss means not cached).
          primary->breaker->RecordSuccess(Now());
          TraceBreaker(*owner, before, primary->breaker->state(Now()));
          ++stats_.misses;
          out.outcome = RouteOutcome::kMiss;
          return out;
        }
        transport_failed = true;
      } else {
        transport_failed = true;
      }
      if (transport_failed) {
        HandleTransportFailure(*primary, *owner);
        if (!config_.breakers_enabled) {
          ++stats_.conn_errors_surfaced;
          out.outcome = RouteOutcome::kConnError;
          return out;
        }
        // fall through to the backup leg
      }
    }
  }

  // --- Backup leg (degradation): hot copies only. ---
  if (backup_.has_value() &&
      (!config_.breakers_enabled || backup_->breaker->Allow(Now()))) {
    if (EnsureConnected(*backup_)) {
      const auto got = backup_->client.Get(key);
      if (got.found) {
        backup_->breaker->RecordSuccess(Now());
        ++stats_.backup_hits;
        out.outcome = RouteOutcome::kBackupHit;
        out.value = got.value;
        return out;
      }
      if (!TransportFailed(backup_->client.last_error())) {
        backup_->breaker->RecordSuccess(Now());
        ++stats_.misses;
        out.outcome = RouteOutcome::kMiss;
        return out;
      }
    }
    HandleTransportFailure(*backup_, ~0ULL);
    if (!config_.breakers_enabled) {
      ++stats_.conn_errors_surfaced;
      out.outcome = RouteOutcome::kConnError;
      return out;
    }
  }

  // Nothing reachable: absorbed as a shed, never a connection error.
  ++stats_.sheds;
  if (tracer_ != nullptr) {
    tracer_->Shed(Now(), "fleet_router", 1.0);
  }
  out.outcome = RouteOutcome::kShed;
  return out;
}

bool FleetRouter::Set(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sets;

  const auto owner = ring_.NodeFor(HashString(key));
  if (owner.has_value()) {
    auto it = nodes_.find(*owner);
    if (it != nodes_.end()) {
      Node& primary = it->second;
      const SimTime now = Now();
      if (!config_.breakers_enabled || primary.breaker->Allow(now)) {
        const BreakerState before = primary.breaker->state(now);
        if (EnsureConnected(primary) && primary.client.Set(key, value)) {
          primary.breaker->RecordSuccess(Now());
          TraceBreaker(*owner, before, primary.breaker->state(Now()));
          ++stats_.set_ok;
          return true;
        }
        if (TransportFailed(primary.client.last_error()) ||
            !primary.connected) {
          HandleTransportFailure(primary, *owner);
          if (!config_.breakers_enabled) {
            ++stats_.conn_errors_surfaced;
            return false;
          }
        }
      }
    }
  }

  // Degraded write: land it on the backup so post-kill warm-up (and backup
  // fall-through reads) still see fresh data — the paper's write-to-backup
  // failover discipline.
  if (backup_.has_value() &&
      (!config_.breakers_enabled || backup_->breaker->Allow(Now()))) {
    if (EnsureConnected(*backup_) && backup_->client.Set(key, value)) {
      backup_->breaker->RecordSuccess(Now());
      ++stats_.set_ok;
      return true;
    }
    if (TransportFailed(backup_->client.last_error()) || !backup_->connected) {
      HandleTransportFailure(*backup_, ~0ULL);
      if (!config_.breakers_enabled) {
        ++stats_.conn_errors_surfaced;
        return false;
      }
    }
  }

  ++stats_.sheds;
  if (tracer_ != nullptr) {
    tracer_->Shed(Now(), "fleet_router", 1.0);
  }
  return false;
}

FleetRouterStats FleetRouter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace spotcache::fleet
