// FleetRouter: the thin client-side proxy tier (mcrouter's role) that lets
// traffic keep flowing while fleet processes die and respawn under it.
//
// Keys are homed on primary slots by weighted consistent hashing (the same
// ring the simulated Router uses), and each slot is fronted by a
// src/resilience CircuitBreaker. The absorption contract — the property
// test_fleet_drill pins — is that with breakers enabled NO request ever
// surfaces a connection error to the caller:
//
//   * a transport failure (reset / pipe / refused / closed: the slot's
//     process was SIGKILLed) records a breaker failure, is retried once
//     through Reconnect()'s capped backoff, and on continued failure the
//     request degrades — gets fall through to the backup node, then to a
//     miss; sets fall through to the backup so the write lands somewhere
//     warm-up can find it;
//   * while a slot's breaker is open, requests skip the socket entirely and
//     degrade the same way (shed, in resilience vocabulary);
//   * when the supervisor swaps in a replacement endpoint (SetNode with the
//     same slot id), the slot's breaker and connection reset and the next
//     request probes the new process.
//
// Thread safety: all public entry points take one internal mutex. The drill
// calls Get/Set from its traffic thread while the controller swaps endpoints
// from the chaos thread; neither blocks the other for longer than one
// synchronous round trip.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/fleet/fleet_view.h"
#include "src/net/client.h"
#include "src/obs/trace.h"
#include "src/resilience/circuit_breaker.h"
#include "src/routing/consistent_hash.h"
#include "src/util/time.h"

namespace spotcache::fleet {

struct FleetRouterConfig {
  bool breakers_enabled = true;
  CircuitBreakerConfig breaker{
      .failure_threshold = 2,
      .open_base = Duration::Millis(100),
      .open_backoff = 2.0,
      .open_max = Duration::Seconds(2),
      .half_open_successes = 1,
      .probe_jitter = 0.25,
  };
  net::ReconnectPolicy reconnect{.max_attempts = 1,
                                 .initial_backoff_ms = 5,
                                 .max_backoff_ms = 50,
                                 .backoff_factor = 2.0};
  int op_timeout_ms = 250;
  uint64_t seed = 0;
};

/// How one routed request was ultimately served.
enum class RouteOutcome : uint8_t {
  kHit,           // value returned by the owning primary
  kBackupHit,     // primary unavailable, backup had it
  kMiss,          // a reachable node answered: not found
  kShed,          // nothing reachable (breaker open / no endpoint); absorbed
  kConnError,     // transport error surfaced to the caller
                  // (only possible with breakers_enabled = false)
};

struct RoutedGet {
  RouteOutcome outcome = RouteOutcome::kShed;
  std::string value;
};

struct FleetRouterStats {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t backup_hits = 0;
  uint64_t misses = 0;
  uint64_t sets = 0;
  uint64_t set_ok = 0;
  uint64_t sheds = 0;
  uint64_t conn_errors_surfaced = 0;  // kConnError outcomes (breakers off)
  uint64_t conn_failures_absorbed = 0;  // transport failures hidden by breakers
  uint64_t reconnects = 0;
};

class FleetRouter : public FleetView {
 public:
  explicit FleetRouter(const FleetRouterConfig& config,
                       EventTracer* tracer = nullptr);

  /// Adds slot `slot` to the ring, or re-points it at a replacement
  /// endpoint. Re-pointing resets the slot's breaker and connection; ring
  /// ownership (and therefore key placement) does not move.
  void SetNode(uint64_t slot, const std::string& host, uint16_t port) override;

  /// The off-ring backup node (holds hot copies; read/write fallback).
  void SetBackup(const std::string& host, uint16_t port) override;

  /// Immediately force the slot's breaker open (the controller knows a kill
  /// just happened; traffic need not discover it the hard way).
  void MarkDead(uint64_t slot) override;

  RoutedGet Get(std::string_view key);
  /// True when the value landed on the primary or (degraded) the backup.
  bool Set(std::string_view key, std::string_view value);

  FleetRouterStats stats() const;
  /// The slot currently owning `key` (for tests / warm-up key selection).
  std::optional<uint64_t> OwnerOf(std::string_view key) const;

 private:
  struct Node {
    std::string host;
    uint16_t port = 0;
    net::NetClient client;
    std::unique_ptr<CircuitBreaker> breaker;
    bool connected = false;
  };

  SimTime Now() const;
  bool EnsureConnected(Node& node);
  /// Records a transport failure on `node` (breaker + trace) and tries one
  /// reconnect. Returns true when the connection was re-established.
  bool HandleTransportFailure(Node& node, uint64_t slot);
  void TraceBreaker(uint64_t slot, BreakerState before, BreakerState after);

  FleetRouterConfig config_;
  EventTracer* tracer_;  // traffic-thread-only; see drill.cc merge step

  mutable std::mutex mu_;
  ConsistentHashRing ring_;
  std::map<uint64_t, Node> nodes_;
  std::optional<Node> backup_;
  FleetRouterStats stats_;
  /// Wall anchor for the breakers' SimTime clock (drill-relative micros).
  int64_t epoch_us_ = 0;
};

}  // namespace spotcache::fleet
