#include "src/fleet/membership_publisher.h"

#include <algorithm>

#include "src/routing/hash.h"

namespace spotcache::fleet {

MembershipPublisher::MembershipPublisher(std::string path,
                                         std::function<void()> notify)
    : path_(std::move(path)), notify_(std::move(notify)) {}

proxy::MemberNode* MembershipPublisher::NodeLocked(uint64_t slot) {
  for (proxy::MemberNode& n : membership_.nodes) {
    if (n.slot == slot) {
      return &n;
    }
  }
  proxy::MemberNode node;
  node.slot = slot;
  membership_.nodes.push_back(node);
  std::sort(membership_.nodes.begin(), membership_.nodes.end(),
            [](const proxy::MemberNode& a, const proxy::MemberNode& b) {
              return a.slot < b.slot;
            });
  ring_.SetNode(slot, 1.0);
  return NodeLocked(slot);
}

void MembershipPublisher::PublishLocked() {
  ++membership_.generation;
  save_failed_ = !proxy::SaveMembership(path_, membership_);
  if (!save_failed_ && notify_) {
    notify_();
  }
}

void MembershipPublisher::SetNode(uint64_t slot, const std::string& host,
                                  uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  proxy::MemberNode* node = NodeLocked(slot);
  node->host = host;
  node->port = port;
  PublishLocked();
}

void MembershipPublisher::SetBackup(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  proxy::MemberNode backup;
  backup.host = host;
  backup.port = port;
  membership_.backup = backup;
  PublishLocked();
}

void MembershipPublisher::MarkDead(uint64_t slot) {
  std::lock_guard<std::mutex> lock(mu_);
  proxy::MemberNode* node = NodeLocked(slot);
  node->host.clear();
  node->port = 0;
  PublishLocked();
}

std::optional<uint64_t> MembershipPublisher::OwnerOf(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.NodeFor(HashString(key));
}

proxy::FleetMembership MembershipPublisher::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return membership_;
}

uint64_t MembershipPublisher::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return membership_.generation;
}

bool MembershipPublisher::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !save_failed_;
}

}  // namespace spotcache::fleet
