// MembershipPublisher: a FleetView that feeds an out-of-process proxy.
//
// The controller's SetNode / SetBackup / MarkDead verbs mutate a
// FleetMembership document (src/proxy/membership.h); every mutation bumps
// the generation, rewrites the membership file atomically (tmp + rename),
// and fires the notify callback — in the drill, a SIGHUP to the
// spotcache_proxy process, whose loop then re-reads the file. The proxy
// therefore sees each chaos action as a whole-document generation step,
// never a torn intermediate state.
//
// A mirror ConsistentHashRing (built exactly like the proxy's UpstreamPool
// ring: HashString on the key, weight 1.0 per slot, dead slots kept on the
// ring) answers OwnerOf so the drill can compute which hot keys a slot's
// replacement must be re-fed without asking the proxy.
//
// Thread safety: all entry points take one internal mutex (the controller
// calls from its chaos thread; the drill reads OwnerOf from setup code).

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "src/fleet/fleet_view.h"
#include "src/proxy/membership.h"
#include "src/routing/consistent_hash.h"

namespace spotcache::fleet {

class MembershipPublisher : public FleetView {
 public:
  /// Writes membership documents to `path`; `notify` (nullable) runs after
  /// every successful publish (e.g. kill(proxy_pid, SIGHUP)).
  MembershipPublisher(std::string path, std::function<void()> notify);

  void SetNode(uint64_t slot, const std::string& host,
               uint16_t port) override;
  void SetBackup(const std::string& host, uint16_t port) override;
  void MarkDead(uint64_t slot) override;

  /// The slot owning `key` on the mirror ring (dead slots still own their
  /// keys — the proxy degrades them to the backup rather than rehashing).
  std::optional<uint64_t> OwnerOf(std::string_view key) const;

  /// Current document (for tests and the drill report).
  proxy::FleetMembership Snapshot() const;
  uint64_t generation() const;
  /// True when every publish so far hit the file (a failed write keeps the
  /// document in memory and is retried by the next mutation).
  bool healthy() const;

 private:
  /// Bumps the generation, saves, notifies. Caller holds mu_.
  void PublishLocked();
  /// The document's node entry for `slot` (created on demand).
  proxy::MemberNode* NodeLocked(uint64_t slot);

  const std::string path_;
  const std::function<void()> notify_;

  mutable std::mutex mu_;
  proxy::FleetMembership membership_;
  ConsistentHashRing ring_;
  bool save_failed_ = false;
};

}  // namespace spotcache::fleet
