// FleetView: the controller-facing membership surface of a routing tier.
//
// FleetController mutates fleet membership through exactly three verbs —
// point a slot at an endpoint, point the backup, declare a slot dead — and
// does not care who consumes them. Two implementations exist:
//
//   * FleetRouter (fleet_router.h): the in-process client-side router; the
//     verbs mutate its ring/breakers directly.
//   * MembershipPublisher (membership_publisher.h): writes the membership
//     file a standalone spotcache_proxy re-reads on SIGHUP, so the same
//     chaos choreography drives an out-of-process proxy tier.
//
// Implementations must tolerate calls from the controller's chaos thread
// concurrently with their own traffic-side readers.

#pragma once

#include <cstdint>
#include <string>

namespace spotcache::fleet {

class FleetView {
 public:
  virtual ~FleetView() = default;

  /// Adds ring slot `slot` or re-points it at a replacement endpoint.
  /// Re-pointing resets the slot's health state; ring ownership (and
  /// therefore key placement) does not move.
  virtual void SetNode(uint64_t slot, const std::string& host,
                       uint16_t port) = 0;

  /// The off-ring backup node (holds hot copies; read/write fallback).
  virtual void SetBackup(const std::string& host, uint16_t port) = 0;

  /// Declares the slot dead right now (a kill just happened; traffic need
  /// not discover the corpse the hard way).
  virtual void MarkDead(uint64_t slot) = 0;
};

}  // namespace spotcache::fleet
