// The drill experiment grid: (seed x storm scenario x warning fate) cells of
// the wire-real chaos drill, swept with the PR-3 thread-pool grid driver and
// rendered as the cost / hit-rate / p99 table EXPERIMENTS.md carries.
//
// Each cell is one full RunFleetDrill — real processes, real SIGKILLs, and
// (in proxy mode) real open-loop traffic through a standalone spotcache_proxy
// — so unlike the simulator grids the cells are NOT pure functions of their
// config: wall-clock timing feeds the measured hit-rate trajectory. The grid
// therefore defaults to one worker (cells time-share the box; concurrent
// drills would perturb each other's tail latencies) and reports measured
// ranges, not replayable digests.
//
// The cost column is the paper's fleet arithmetic, not a measurement: a
// spot fleet of N primaries plus one burstable backup (plus the proxy node
// in proxy mode) versus the same headcount bought on demand.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/drill.h"

namespace spotcache::fleet {

/// One grid cell: overrides applied to the base drill config.
struct DrillGridCell {
  uint64_t seed = 42;
  int storms = 1;
  /// Warning fate: 0.0 = every revocation warned (Fig 4 cases 1a/1b),
  /// 1.0 = every warning suppressed (case 2).
  double missed_warning_fraction = 0.0;
  std::string label;  // row name; derived from the axes when empty
};

/// Per-node-hour prices (the paper's Table 1/3 fleet arithmetic, in $/h).
struct DrillCostModel {
  double on_demand_hr = 0.120;  // regular on-demand cache node
  double spot_hr = 0.027;       // same capacity on the spot market
  double burstable_hr = 0.052;  // always-on burstable backup (t2.medium-ish)
  double proxy_hr = 0.052;      // thin always-up proxy node (proxy mode)
};

struct DrillGridRow {
  DrillGridCell cell;
  FleetDrillReport report;
  double fleet_cost_hr = 0.0;      // spot primaries + backup (+ proxy)
  double on_demand_cost_hr = 0.0;  // same headcount, all on demand
  double savings_fraction = 0.0;   // 1 - fleet/on_demand
};

/// Default 8-cell sweep: 2 seeds x {1, max(2, primaries)} storms x
/// {warned, unwarned}.
std::vector<DrillGridCell> DefaultDrillGrid(const FleetDrillConfig& base);

/// Runs every cell (threads <= 1 runs serially, in cell order) and returns
/// rows in cell order regardless of completion order.
std::vector<DrillGridRow> RunDrillGrid(const FleetDrillConfig& base,
                                       const std::vector<DrillGridCell>& cells,
                                       const DrillCostModel& cost = {},
                                       int threads = 1);

/// The markdown table EXPERIMENTS.md embeds: one row per cell with cost,
/// recovery, hit rates, and (proxy mode) client p99 / surfaced errors.
std::string RenderDrillGridMarkdown(const std::vector<DrillGridRow>& rows);

}  // namespace spotcache::fleet
