#include "src/fleet/drill.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/loadgen/key_sampler.h"
#include "src/net/client.h"
#include "src/obs/exporters.h"
#include "src/util/rng.h"

namespace spotcache::fleet {

namespace {

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepUs(int64_t us) {
  if (us <= 0) {
    return;
  }
  timespec ts{};
  ts.tv_sec = us / 1'000'000;
  ts.tv_nsec = (us % 1'000'000) * 1000;
  ::nanosleep(&ts, nullptr);
}

std::string KeyName(uint64_t id) { return "fk:" + std::to_string(id); }

/// Deterministic per-key payload, so a re-fill after a kill stores the same
/// bytes the prefill did.
std::string ValueFor(uint64_t id, size_t bytes) {
  std::string v(bytes, 'x');
  for (size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<char>('a' + (id + i) % 26);
  }
  return v;
}

/// Aggregated hit rate over a window range (inclusive indices).
double AggregateHitRate(const std::vector<DrillWindow>& windows, size_t begin,
                        size_t end) {
  uint64_t gets = 0;
  uint64_t hits = 0;
  for (size_t i = begin; i < end && i < windows.size(); ++i) {
    gets += windows[i].gets;
    hits += windows[i].hits + windows[i].backup_hits;
  }
  return gets == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(gets);
}

}  // namespace

FleetDrillReport RunFleetDrill(const FleetDrillConfig& config) {
  FleetDrillReport report;

  // --- The pure half: the kill schedule. ---
  KillScheduleParams sched_params;
  sched_params.seed = config.seed;
  sched_params.scenario = config.scenario;
  sched_params.node_count = config.primaries;
  sched_params.window_start = config.lead_in;
  sched_params.window_length = config.chaos_window;
  sched_params.warning_lead = config.warning_lead;
  report.schedule = BuildKillSchedule(sched_params);

  // --- Components. ---
  EventTracer router_tracer;   // traffic thread only
  EventTracer control_tracer;  // drill thread only
  router_tracer.set_enabled(true);
  control_tracer.set_enabled(true);

  FleetRouterConfig router_config = config.router;
  router_config.seed = config.seed;
  FleetRouter router(router_config, &router_tracer);

  FleetControllerConfig ctl;
  ctl.supervisor = config.supervisor;
  ctl.supervisor.server_binary = config.server_binary;
  ctl.supervisor.seed = config.seed;
  ctl.warmup = config.warmup;
  ctl.primaries = config.primaries;
  ctl.capacity_mb = config.capacity_mb;
  ctl.replacement_boot_delay = config.replacement_boot_delay;
  FleetController controller(ctl, &router, &control_tracer);

  std::string error;
  if (!controller.StartFleet(&error)) {
    report.error = error;
    return report;
  }

  // --- Prefill: every key to its owner; the hot set also to the backup
  // (the paper's backup holds copies of hot items at all times). ---
  for (uint64_t id = 0; id < config.num_keys; ++id) {
    if (!router.Set(KeyName(id), ValueFor(id, config.value_bytes))) {
      report.error = "prefill set failed for key " + std::to_string(id);
      return report;
    }
  }
  {
    net::NetClient backup;
    if (!backup.Connect("127.0.0.1", controller.backup_port(), 2000)) {
      report.error = "prefill backup connect failed";
      return report;
    }
    for (uint64_t id = 0; id < config.hot_keys && id < config.num_keys;
         ++id) {
      if (!backup.Set(KeyName(id), ValueFor(id, config.value_bytes))) {
        report.error = "prefill backup set failed for key " +
                       std::to_string(id);
        return report;
      }
    }
  }

  // Hot keys a slot's replacement must be re-fed: the hot ids the ring homes
  // on that slot. Ring ownership is stable across kills (SetNode re-points
  // the same slot id), so this can be computed from the live router.
  const auto hot_keys_for_slot = [&](int slot) {
    std::vector<std::string> keys;
    for (uint64_t id = 0; id < config.hot_keys && id < config.num_keys;
         ++id) {
      std::string key = KeyName(id);
      const auto owner = router.OwnerOf(key);
      if (owner.has_value() && *owner == static_cast<uint64_t>(slot)) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  };

  // --- Traffic thread: paced ops through the router, windowed tallies. ---
  const Duration total_duration =
      config.lead_in + config.chaos_window + config.recovery_window;
  const int64_t window_us = std::max<int64_t>(config.hit_window.micros(), 1);
  const size_t window_count =
      static_cast<size_t>(total_duration.micros() / window_us) + 2;
  std::vector<DrillWindow> windows(window_count);
  for (size_t i = 0; i < windows.size(); ++i) {
    windows[i].start_us = static_cast<int64_t>(i) * window_us;
  }

  const int64_t epoch_us = WallUs();
  std::atomic<bool> stop{false};
  uint64_t total_ops = 0;

  std::thread traffic([&] {
    Rng rng(config.seed ^ 0xf1ee7d41ULL);
    loadgen::KeySampler sampler(
        {.num_keys = config.num_keys, .theta = config.zipf_theta,
         .scramble = false});
    const double interval_us = 1e6 / std::max(config.rate, 1.0);
    uint64_t op_index = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t scheduled =
          epoch_us + static_cast<int64_t>(interval_us *
                                          static_cast<double>(op_index));
      SleepUs(scheduled - WallUs());
      if (stop.load(std::memory_order_relaxed)) {
        break;
      }

      const uint64_t id = sampler.KeyFor(sampler.SampleRank(rng), 0);
      const bool is_set =
          static_cast<double>(rng()) <
          config.set_fraction * 18446744073709551616.0;  // 2^64
      const std::string key = KeyName(id);

      const int64_t now = WallUs() - epoch_us;
      const size_t w = std::min(static_cast<size_t>(now / window_us),
                                windows.size() - 1);
      if (is_set) {
        ++windows[w].sets;
        router.Set(key, ValueFor(id, config.value_bytes));
      } else {
        ++windows[w].gets;
        const RoutedGet got = router.Get(key);
        switch (got.outcome) {
          case RouteOutcome::kHit:
            ++windows[w].hits;
            break;
          case RouteOutcome::kBackupHit:
            ++windows[w].backup_hits;
            break;
          case RouteOutcome::kMiss:
            ++windows[w].misses;
            if (config.read_through) {
              router.Set(key, ValueFor(id, config.value_bytes));
            }
            break;
          case RouteOutcome::kShed:
            ++windows[w].sheds;
            break;
          case RouteOutcome::kConnError:
            ++windows[w].conn_errors;
            break;
        }
      }
      ++op_index;
    }
    total_ops = op_index;
  });

  // --- The chaos: execute the schedule while traffic runs. ---
  report.recoveries =
      controller.ExecuteSchedule(report.schedule, hot_keys_for_slot, epoch_us);

  // Let the fleet serve through the recovery window, then stop.
  const int64_t end_us = epoch_us + total_duration.micros();
  SleepUs(end_us - WallUs());
  stop.store(true, std::memory_order_relaxed);
  traffic.join();

  controller.StopFleet();

  // --- Derived summary. ---
  report.windows = std::move(windows);
  report.router_stats = router.stats();
  report.total_ops = total_ops;
  report.duration_s = static_cast<double>(WallUs() - epoch_us) / 1e6;

  int64_t first_kill_us = -1;
  int64_t last_kill_us = -1;
  for (const RecoveryRecord& r : report.recoveries) {
    if (r.kill_us >= 0) {
      first_kill_us = first_kill_us < 0 ? r.kill_us
                                        : std::min(first_kill_us, r.kill_us);
      last_kill_us = std::max(last_kill_us, r.kill_us);
    }
  }

  if (first_kill_us > 0) {
    const size_t pre_end = static_cast<size_t>(first_kill_us / window_us);
    report.pre_kill_hit_rate = AggregateHitRate(report.windows, 0, pre_end);
  } else {
    report.pre_kill_hit_rate =
        AggregateHitRate(report.windows, 0, report.windows.size());
  }

  // Final rate: the last fifth of the run (at least one window).
  const size_t tail_begin =
      report.windows.size() - std::max<size_t>(report.windows.size() / 5, 1);
  report.final_hit_rate =
      AggregateHitRate(report.windows, tail_begin, report.windows.size());

  if (last_kill_us >= 0) {
    const double target = config.recovery_threshold * report.pre_kill_hit_rate;
    for (const DrillWindow& w : report.windows) {
      if (w.start_us < last_kill_us || w.gets == 0) {
        continue;
      }
      if (w.HitRate() >= target) {
        report.recovered_us = w.start_us;
        report.recovered = true;
        break;
      }
    }
  } else {
    report.recovered = true;  // nothing was killed; trivially recovered
  }

  report.trace_jsonl = ToJsonl(control_tracer) + ToJsonl(router_tracer);
  report.ok = report.error.empty();
  return report;
}

std::string RenderDrillJson(const FleetDrillReport& report) {
  using spotcache::EventTracer;
  std::string out = "{\n";
  auto num = [](double v) { return EventTracer::JsonNumber(v); };
  auto inum = [](int64_t v) { return EventTracer::JsonNumber(v); };

  out += "\"ok\": " + std::string(report.ok ? "true" : "false") + ",\n";
  if (!report.error.empty()) {
    out += "\"error\": " + EventTracer::JsonString(report.error) + ",\n";
  }

  out += "\"schedule\": [";
  for (size_t i = 0; i < report.schedule.actions.size(); ++i) {
    const KillAction& a = report.schedule.actions[i];
    if (i > 0) {
      out += ", ";
    }
    out += "{\"kill_at_ms\": " + inum(a.kill_at.micros() / 1000) +
           ", \"slot\": " + inum(a.slot) +
           ", \"warned\": " + (a.warned ? "true" : "false") +
           ", \"late\": " + (a.late ? "true" : "false") +
           ", \"warning_lead_ms\": " + inum(a.warning_lead.micros() / 1000) +
           "}";
  }
  out += "],\n";

  out += "\"recoveries\": [";
  for (size_t i = 0; i < report.recoveries.size(); ++i) {
    const RecoveryRecord& r = report.recoveries[i];
    if (i > 0) {
      out += ", ";
    }
    out += "{\"slot\": " + inum(r.slot) +
           ", \"case\": " + EventTracer::JsonString(r.case_label) +
           ", \"warned\": " + (r.warned ? "true" : "false") +
           ", \"planned_kill_ms\": " +
           inum(r.planned_kill_at.micros() / 1000) +
           ", \"warning_us\": " + inum(r.warning_us) +
           ", \"kill_us\": " + inum(r.kill_us) +
           ", \"replacement_ready_us\": " + inum(r.replacement_ready_us) +
           ", \"warmup_start_us\": " + inum(r.warmup_start_us) +
           ", \"warmup_end_us\": " + inum(r.warmup_end_us) +
           ", \"replacement_ok\": " + (r.replacement_ok ? "true" : "false") +
           ", \"spawn_attempts\": " + inum(r.spawn_attempts) +
           ", \"warmup\": {\"items_copied\": " + inum(r.warmup.items_copied) +
           ", \"items_missing\": " + inum(r.warmup.items_missing) +
           ", \"bytes_copied\": " + inum(r.warmup.bytes_copied) +
           ", \"reconnects\": " + inum(r.warmup.reconnects) +
           ", \"duration_s\": " + num(r.warmup.duration_s) +
           ", \"token_rate_bytes_per_s\": " + num(r.warmup.token_rate) +
           ", \"token_burst_bytes\": " + num(r.warmup.token_burst) +
           ", \"token_initial_bytes\": " + num(r.warmup.token_initial) +
           "}}";
  }
  out += "],\n";

  out += "\"windows\": [";
  bool first = true;
  for (const DrillWindow& w : report.windows) {
    if (w.gets == 0 && w.sets == 0) {
      continue;  // trailing empty buckets
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "{\"start_ms\": " + inum(w.start_us / 1000) +
           ", \"gets\": " + inum(w.gets) + ", \"hits\": " + inum(w.hits) +
           ", \"backup_hits\": " + inum(w.backup_hits) +
           ", \"misses\": " + inum(w.misses) +
           ", \"sheds\": " + inum(w.sheds) +
           ", \"conn_errors\": " + inum(w.conn_errors) +
           ", \"sets\": " + inum(w.sets) +
           ", \"hit_rate\": " + num(w.HitRate()) + "}";
  }
  out += "],\n";

  const FleetRouterStats& s = report.router_stats;
  out += "\"router\": {\"gets\": " + inum(s.gets) +
         ", \"hits\": " + inum(s.hits) +
         ", \"backup_hits\": " + inum(s.backup_hits) +
         ", \"misses\": " + inum(s.misses) + ", \"sets\": " + inum(s.sets) +
         ", \"set_ok\": " + inum(s.set_ok) + ", \"sheds\": " + inum(s.sheds) +
         ", \"conn_errors_surfaced\": " + inum(s.conn_errors_surfaced) +
         ", \"conn_failures_absorbed\": " +
         inum(s.conn_failures_absorbed) +
         ", \"reconnects\": " + inum(s.reconnects) + "},\n";

  out += "\"summary\": {\"pre_kill_hit_rate\": " +
         num(report.pre_kill_hit_rate) +
         ", \"final_hit_rate\": " + num(report.final_hit_rate) +
         ", \"recovered\": " + (report.recovered ? "true" : "false") +
         ", \"recovered_us\": " + inum(report.recovered_us) +
         ", \"total_ops\": " + inum(report.total_ops) +
         ", \"duration_s\": " + num(report.duration_s) + "}\n";
  out += "}\n";
  return out;
}

}  // namespace spotcache::fleet
