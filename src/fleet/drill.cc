#include "src/fleet/drill.h"

#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/fleet/membership_publisher.h"
#include "src/loadgen/key_sampler.h"
#include "src/net/client.h"
#include "src/obs/exporters.h"
#include "src/util/rng.h"

namespace spotcache::fleet {

namespace {

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepUs(int64_t us) {
  if (us <= 0) {
    return;
  }
  timespec ts{};
  ts.tv_sec = us / 1'000'000;
  ts.tv_nsec = (us % 1'000'000) * 1000;
  ::nanosleep(&ts, nullptr);
}

std::string KeyName(uint64_t id) { return "fk:" + std::to_string(id); }

/// Deterministic per-key payload, so a re-fill after a kill stores the same
/// bytes the prefill did.
std::string ValueFor(uint64_t id, size_t bytes) {
  std::string v(bytes, 'x');
  for (size_t i = 0; i < bytes; ++i) {
    v[i] = static_cast<char>('a' + (id + i) % 26);
  }
  return v;
}

/// Aggregated hit rate over a window range (inclusive indices).
double AggregateHitRate(const std::vector<DrillWindow>& windows, size_t begin,
                        size_t end) {
  uint64_t gets = 0;
  uint64_t hits = 0;
  for (size_t i = begin; i < end && i < windows.size(); ++i) {
    gets += windows[i].gets;
    hits += windows[i].hits + windows[i].backup_hits;
  }
  return gets == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(gets);
}

/// Pre-kill / final hit rates and the recovery verdict, derived from
/// report->windows + report->recoveries (shared by both drill modes).
void FinalizeSummary(const FleetDrillConfig& config, int64_t window_us,
                     FleetDrillReport* report) {
  int64_t first_kill_us = -1;
  int64_t last_kill_us = -1;
  for (const RecoveryRecord& r : report->recoveries) {
    if (r.kill_us >= 0) {
      first_kill_us = first_kill_us < 0 ? r.kill_us
                                        : std::min(first_kill_us, r.kill_us);
      last_kill_us = std::max(last_kill_us, r.kill_us);
    }
  }

  if (first_kill_us > 0) {
    const size_t pre_end = static_cast<size_t>(first_kill_us / window_us);
    report->pre_kill_hit_rate = AggregateHitRate(report->windows, 0, pre_end);
  } else {
    report->pre_kill_hit_rate =
        AggregateHitRate(report->windows, 0, report->windows.size());
  }

  // Final rate: the last fifth of the run (at least one window).
  const size_t tail_begin =
      report->windows.size() -
      std::min(report->windows.size(),
               std::max<size_t>(report->windows.size() / 5, 1));
  report->final_hit_rate =
      AggregateHitRate(report->windows, tail_begin, report->windows.size());

  if (last_kill_us >= 0) {
    const double target =
        config.recovery_threshold * report->pre_kill_hit_rate;
    for (const DrillWindow& w : report->windows) {
      if (w.start_us < last_kill_us || w.gets == 0) {
        continue;
      }
      if (w.HitRate() >= target) {
        report->recovered_us = w.start_us;
        report->recovered = true;
        break;
      }
    }
  } else {
    report->recovered = true;  // nothing was killed; trivially recovered
  }
}

/// Pipelined closed-loop prefill of keys [0, n) into host:port, with the
/// same key names ("fk:<id>") and value bytes the loadgen stream writes.
bool PrefillEndpoint(const std::string& host, uint16_t port, uint64_t n,
                     size_t value_bytes, int timeout_ms) {
  net::NetClient client;
  if (!client.Connect(host, port, timeout_ms)) {
    return false;
  }
  const std::string value(value_bytes, 'v');
  constexpr uint64_t kBatch = 128;
  for (uint64_t base = 0; base < n; base += kBatch) {
    const uint64_t end = std::min(base + kBatch, n);
    std::string batch;
    for (uint64_t id = base; id < end; ++id) {
      batch += "set " + KeyName(id) + " 0 0 " +
               std::to_string(value.size()) + "\r\n" + value + "\r\n";
    }
    if (!client.SendRaw(batch)) {
      return false;
    }
    for (uint64_t id = base; id < end; ++id) {
      if (client.ReadLine() != "STORED") {
        return false;
      }
    }
  }
  return true;
}

/// Scrapes the proxy's deterministic `stats` block into name -> value.
std::map<std::string, uint64_t> ScrapeProxyStats(uint16_t port) {
  std::map<std::string, uint64_t> stats;
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port, 2000)) {
    return stats;
  }
  if (!client.SendRaw("stats\r\n")) {
    return stats;
  }
  for (int i = 0; i < 256; ++i) {
    const auto line = client.ReadLine();
    if (!line.has_value() || *line == "END") {
      break;
    }
    // "STAT <name> <value>" (the version line fails the number parse and is
    // skipped).
    const std::string& s = *line;
    if (s.rfind("STAT ", 0) != 0) {
      continue;
    }
    const size_t space = s.rfind(' ');
    if (space == std::string::npos || space < 5) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str() + space + 1, &end, 10);
    if (end == nullptr || *end != '\0') {
      continue;
    }
    stats[s.substr(5, space - 5)] = static_cast<uint64_t>(v);
  }
  return stats;
}

/// The drill with a standalone proxy tier in front of the fleet: chaos is
/// narrated through the membership file + SIGHUP, traffic goes through the
/// proxy via the open-loop loadgen engine.
FleetDrillReport RunProxyDrill(const FleetDrillConfig& config,
                               FleetDrillReport report) {
  report.via_proxy = true;

  EventTracer control_tracer;
  control_tracer.set_enabled(true);

  const std::string members_path =
      config.membership_path.empty()
          ? "/tmp/spotcache_members_" + std::to_string(::getpid()) + ".txt"
          : config.membership_path;

  // The proxy learns every chaos action via membership generations; until it
  // is spawned the publisher just writes the file.
  std::atomic<pid_t> proxy_pid{-1};
  MembershipPublisher publisher(members_path, [&proxy_pid] {
    const pid_t pid = proxy_pid.load(std::memory_order_relaxed);
    if (pid > 0) {
      ::kill(pid, SIGHUP);
    }
  });

  FleetControllerConfig ctl;
  ctl.supervisor = config.supervisor;
  ctl.supervisor.server_binary = config.server_binary;
  ctl.supervisor.seed = config.seed;
  ctl.warmup = config.warmup;
  ctl.primaries = config.primaries;
  ctl.capacity_mb = config.capacity_mb;
  ctl.replacement_boot_delay = config.replacement_boot_delay;
  FleetController controller(ctl, &publisher, &control_tracer);

  std::string error;
  if (!controller.StartFleet(&error)) {
    report.error = error;
    return report;
  }
  if (!publisher.healthy()) {
    report.error = "membership publish failed: " + members_path;
    return report;
  }

  // --- The proxy process, supervised like any fleet node (same readiness
  // contract, same retry schedule). ---
  SupervisorConfig proxy_sup_config = config.supervisor;
  proxy_sup_config.server_binary = config.proxy_binary;
  proxy_sup_config.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  proxy_sup_config.base_args = {
      "--fleet=" + members_path,
      "--window=" + std::to_string(config.proxy_window),
      "--timeout-ms=" + std::to_string(config.router.op_timeout_ms)};
  ProcessSupervisor proxy_sup(proxy_sup_config);
  SpawnResult proxy = proxy_sup.Spawn("proxy", {"--port=0"});
  if (!proxy.ok) {
    report.error = "proxy launch failed: " + proxy.error;
    controller.StopFleet();
    return report;
  }
  proxy_pid.store(proxy.process.pid, std::memory_order_relaxed);

  // --- Prefill through the proxy (keys land on their ring owners), plus
  // the hot set into the backup directly. ---
  if (!PrefillEndpoint("127.0.0.1", proxy.process.port, config.num_keys,
                       config.value_bytes, 2000)) {
    report.error = "prefill through proxy failed";
    proxy_sup.Terminate(proxy.process);
    controller.StopFleet();
    return report;
  }
  if (!PrefillEndpoint("127.0.0.1", controller.backup_port(),
                       std::min(config.hot_keys, config.num_keys),
                       config.value_bytes, 2000)) {
    report.error = "prefill backup failed";
    proxy_sup.Terminate(proxy.process);
    controller.StopFleet();
    return report;
  }

  const auto hot_keys_for_slot = [&](int slot) {
    std::vector<std::string> keys;
    for (uint64_t id = 0; id < config.hot_keys && id < config.num_keys;
         ++id) {
      std::string key = KeyName(id);
      const auto owner = publisher.OwnerOf(key);
      if (owner.has_value() && *owner == static_cast<uint64_t>(slot)) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  };

  // --- Open-loop traffic through the proxy, windowed by completion time. ---
  const Duration total_duration =
      config.lead_in + config.chaos_window + config.recovery_window;
  const int64_t window_us = std::max<int64_t>(config.hit_window.micros(), 1);

  loadgen::EngineConfig lg;
  lg.host = "127.0.0.1";
  lg.port = proxy.process.port;
  lg.connections = std::max(config.proxy_connections, 1);
  lg.prefill = false;     // done above, through the proxy
  lg.probe_shards = false;
  lg.key_prefix = "fk:";  // KeyName() format
  lg.window_us = window_us;
  lg.read_through = config.read_through;
  lg.stream.seed = config.seed ^ 0xf1ee7d41ULL;
  lg.stream.schedule.kind = loadgen::ScheduleConfig::Kind::kPoisson;
  lg.stream.schedule.base_rate_rps = config.rate;
  lg.stream.schedule.duration_s =
      static_cast<double>(total_duration.micros()) / 1e6;
  lg.stream.keys = {.num_keys = config.num_keys, .theta = config.zipf_theta,
                    .scramble = false};
  lg.stream.mix.get_ratio = 1.0 - config.set_fraction;
  lg.stream.mix.value_bytes = static_cast<uint32_t>(config.value_bytes);

  const int64_t epoch_us = WallUs();
  loadgen::LoadGenResult lg_result;
  std::thread traffic([&] { lg_result = loadgen::RunOpenLoop(lg); });

  // --- The chaos: the controller kills primaries while the proxy absorbs. --
  report.recoveries =
      controller.ExecuteSchedule(report.schedule, hot_keys_for_slot, epoch_us);
  traffic.join();

  report.proxy_stats = ScrapeProxyStats(proxy.process.port);
  report.membership_generation = publisher.generation();
  proxy_sup.Terminate(proxy.process);
  controller.StopFleet();
  ::unlink(members_path.c_str());

  if (!lg_result.ok) {
    report.error = "loadgen through proxy failed: " + lg_result.error;
    return report;
  }

  // --- Client-observed windows (the proxy hides which rung served a hit;
  // its own stats carry the primary/backup split). ---
  report.windows.reserve(lg_result.windows.size());
  for (const loadgen::LoadGenWindow& w : lg_result.windows) {
    DrillWindow dw;
    dw.start_us = w.start_us;
    dw.gets = w.gets;
    dw.hits = w.get_hits;
    dw.misses = w.get_misses;
    dw.sheds = w.errors;  // SERVER_ERROR replies (writes with no rung)
    dw.sets = w.sets;
    report.windows.push_back(dw);
  }
  report.total_ops = lg_result.completed;
  report.duration_s = static_cast<double>(WallUs() - epoch_us) / 1e6;
  report.loadgen = std::move(lg_result);

  FinalizeSummary(config, window_us, &report);
  report.trace_jsonl = ToJsonl(control_tracer);
  report.ok = report.error.empty();
  return report;
}

}  // namespace

FleetDrillReport RunFleetDrill(const FleetDrillConfig& config) {
  FleetDrillReport report;

  // --- The pure half: the kill schedule. ---
  KillScheduleParams sched_params;
  sched_params.seed = config.seed;
  sched_params.scenario = config.scenario;
  sched_params.node_count = config.primaries;
  sched_params.window_start = config.lead_in;
  sched_params.window_length = config.chaos_window;
  sched_params.warning_lead = config.warning_lead;
  report.schedule = BuildKillSchedule(sched_params);

  // Proxy tier requested: same schedule, different serving path.
  if (!config.proxy_binary.empty()) {
    return RunProxyDrill(config, std::move(report));
  }

  // --- Components. ---
  EventTracer router_tracer;   // traffic thread only
  EventTracer control_tracer;  // drill thread only
  router_tracer.set_enabled(true);
  control_tracer.set_enabled(true);

  FleetRouterConfig router_config = config.router;
  router_config.seed = config.seed;
  FleetRouter router(router_config, &router_tracer);

  FleetControllerConfig ctl;
  ctl.supervisor = config.supervisor;
  ctl.supervisor.server_binary = config.server_binary;
  ctl.supervisor.seed = config.seed;
  ctl.warmup = config.warmup;
  ctl.primaries = config.primaries;
  ctl.capacity_mb = config.capacity_mb;
  ctl.replacement_boot_delay = config.replacement_boot_delay;
  FleetController controller(ctl, &router, &control_tracer);

  std::string error;
  if (!controller.StartFleet(&error)) {
    report.error = error;
    return report;
  }

  // --- Prefill: every key to its owner; the hot set also to the backup
  // (the paper's backup holds copies of hot items at all times). ---
  for (uint64_t id = 0; id < config.num_keys; ++id) {
    if (!router.Set(KeyName(id), ValueFor(id, config.value_bytes))) {
      report.error = "prefill set failed for key " + std::to_string(id);
      return report;
    }
  }
  {
    net::NetClient backup;
    if (!backup.Connect("127.0.0.1", controller.backup_port(), 2000)) {
      report.error = "prefill backup connect failed";
      return report;
    }
    for (uint64_t id = 0; id < config.hot_keys && id < config.num_keys;
         ++id) {
      if (!backup.Set(KeyName(id), ValueFor(id, config.value_bytes))) {
        report.error = "prefill backup set failed for key " +
                       std::to_string(id);
        return report;
      }
    }
  }

  // Hot keys a slot's replacement must be re-fed: the hot ids the ring homes
  // on that slot. Ring ownership is stable across kills (SetNode re-points
  // the same slot id), so this can be computed from the live router.
  const auto hot_keys_for_slot = [&](int slot) {
    std::vector<std::string> keys;
    for (uint64_t id = 0; id < config.hot_keys && id < config.num_keys;
         ++id) {
      std::string key = KeyName(id);
      const auto owner = router.OwnerOf(key);
      if (owner.has_value() && *owner == static_cast<uint64_t>(slot)) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  };

  // --- Traffic thread: paced ops through the router, windowed tallies. ---
  const Duration total_duration =
      config.lead_in + config.chaos_window + config.recovery_window;
  const int64_t window_us = std::max<int64_t>(config.hit_window.micros(), 1);
  const size_t window_count =
      static_cast<size_t>(total_duration.micros() / window_us) + 2;
  std::vector<DrillWindow> windows(window_count);
  for (size_t i = 0; i < windows.size(); ++i) {
    windows[i].start_us = static_cast<int64_t>(i) * window_us;
  }

  const int64_t epoch_us = WallUs();
  std::atomic<bool> stop{false};
  uint64_t total_ops = 0;

  std::thread traffic([&] {
    Rng rng(config.seed ^ 0xf1ee7d41ULL);
    loadgen::KeySampler sampler(
        {.num_keys = config.num_keys, .theta = config.zipf_theta,
         .scramble = false});
    const double interval_us = 1e6 / std::max(config.rate, 1.0);
    uint64_t op_index = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int64_t scheduled =
          epoch_us + static_cast<int64_t>(interval_us *
                                          static_cast<double>(op_index));
      SleepUs(scheduled - WallUs());
      if (stop.load(std::memory_order_relaxed)) {
        break;
      }

      const uint64_t id = sampler.KeyFor(sampler.SampleRank(rng), 0);
      const bool is_set =
          static_cast<double>(rng()) <
          config.set_fraction * 18446744073709551616.0;  // 2^64
      const std::string key = KeyName(id);

      const int64_t now = WallUs() - epoch_us;
      const size_t w = std::min(static_cast<size_t>(now / window_us),
                                windows.size() - 1);
      if (is_set) {
        ++windows[w].sets;
        router.Set(key, ValueFor(id, config.value_bytes));
      } else {
        ++windows[w].gets;
        const RoutedGet got = router.Get(key);
        switch (got.outcome) {
          case RouteOutcome::kHit:
            ++windows[w].hits;
            break;
          case RouteOutcome::kBackupHit:
            ++windows[w].backup_hits;
            break;
          case RouteOutcome::kMiss:
            ++windows[w].misses;
            if (config.read_through) {
              router.Set(key, ValueFor(id, config.value_bytes));
            }
            break;
          case RouteOutcome::kShed:
            ++windows[w].sheds;
            break;
          case RouteOutcome::kConnError:
            ++windows[w].conn_errors;
            break;
        }
      }
      ++op_index;
    }
    total_ops = op_index;
  });

  // --- The chaos: execute the schedule while traffic runs. ---
  report.recoveries =
      controller.ExecuteSchedule(report.schedule, hot_keys_for_slot, epoch_us);

  // Let the fleet serve through the recovery window, then stop.
  const int64_t end_us = epoch_us + total_duration.micros();
  SleepUs(end_us - WallUs());
  stop.store(true, std::memory_order_relaxed);
  traffic.join();

  controller.StopFleet();

  // --- Derived summary. ---
  report.windows = std::move(windows);
  report.router_stats = router.stats();
  report.total_ops = total_ops;
  report.duration_s = static_cast<double>(WallUs() - epoch_us) / 1e6;

  FinalizeSummary(config, window_us, &report);

  report.trace_jsonl = ToJsonl(control_tracer) + ToJsonl(router_tracer);
  report.ok = report.error.empty();
  return report;
}

std::string RenderDrillJson(const FleetDrillReport& report) {
  using spotcache::EventTracer;
  std::string out = "{\n";
  auto num = [](double v) { return EventTracer::JsonNumber(v); };
  auto inum = [](int64_t v) { return EventTracer::JsonNumber(v); };

  out += "\"ok\": " + std::string(report.ok ? "true" : "false") + ",\n";
  if (!report.error.empty()) {
    out += "\"error\": " + EventTracer::JsonString(report.error) + ",\n";
  }

  out += "\"schedule\": [";
  for (size_t i = 0; i < report.schedule.actions.size(); ++i) {
    const KillAction& a = report.schedule.actions[i];
    if (i > 0) {
      out += ", ";
    }
    out += "{\"kill_at_ms\": " + inum(a.kill_at.micros() / 1000) +
           ", \"slot\": " + inum(a.slot) +
           ", \"warned\": " + (a.warned ? "true" : "false") +
           ", \"late\": " + (a.late ? "true" : "false") +
           ", \"warning_lead_ms\": " + inum(a.warning_lead.micros() / 1000) +
           "}";
  }
  out += "],\n";

  out += "\"recoveries\": [";
  for (size_t i = 0; i < report.recoveries.size(); ++i) {
    const RecoveryRecord& r = report.recoveries[i];
    if (i > 0) {
      out += ", ";
    }
    out += "{\"slot\": " + inum(r.slot) +
           ", \"case\": " + EventTracer::JsonString(r.case_label) +
           ", \"warned\": " + (r.warned ? "true" : "false") +
           ", \"planned_kill_ms\": " +
           inum(r.planned_kill_at.micros() / 1000) +
           ", \"warning_us\": " + inum(r.warning_us) +
           ", \"kill_us\": " + inum(r.kill_us) +
           ", \"replacement_ready_us\": " + inum(r.replacement_ready_us) +
           ", \"warmup_start_us\": " + inum(r.warmup_start_us) +
           ", \"warmup_end_us\": " + inum(r.warmup_end_us) +
           ", \"replacement_ok\": " + (r.replacement_ok ? "true" : "false") +
           ", \"spawn_attempts\": " + inum(r.spawn_attempts) +
           ", \"warmup\": {\"items_copied\": " + inum(r.warmup.items_copied) +
           ", \"items_missing\": " + inum(r.warmup.items_missing) +
           ", \"bytes_copied\": " + inum(r.warmup.bytes_copied) +
           ", \"reconnects\": " + inum(r.warmup.reconnects) +
           ", \"duration_s\": " + num(r.warmup.duration_s) +
           ", \"token_rate_bytes_per_s\": " + num(r.warmup.token_rate) +
           ", \"token_burst_bytes\": " + num(r.warmup.token_burst) +
           ", \"token_initial_bytes\": " + num(r.warmup.token_initial) +
           "}}";
  }
  out += "],\n";

  out += "\"windows\": [";
  bool first = true;
  for (const DrillWindow& w : report.windows) {
    if (w.gets == 0 && w.sets == 0) {
      continue;  // trailing empty buckets
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += "{\"start_ms\": " + inum(w.start_us / 1000) +
           ", \"gets\": " + inum(w.gets) + ", \"hits\": " + inum(w.hits) +
           ", \"backup_hits\": " + inum(w.backup_hits) +
           ", \"misses\": " + inum(w.misses) +
           ", \"sheds\": " + inum(w.sheds) +
           ", \"conn_errors\": " + inum(w.conn_errors) +
           ", \"sets\": " + inum(w.sets) +
           ", \"hit_rate\": " + num(w.HitRate()) + "}";
  }
  out += "],\n";

  const FleetRouterStats& s = report.router_stats;
  out += "\"router\": {\"gets\": " + inum(s.gets) +
         ", \"hits\": " + inum(s.hits) +
         ", \"backup_hits\": " + inum(s.backup_hits) +
         ", \"misses\": " + inum(s.misses) + ", \"sets\": " + inum(s.sets) +
         ", \"set_ok\": " + inum(s.set_ok) + ", \"sheds\": " + inum(s.sheds) +
         ", \"conn_errors_surfaced\": " + inum(s.conn_errors_surfaced) +
         ", \"conn_failures_absorbed\": " +
         inum(s.conn_failures_absorbed) +
         ", \"reconnects\": " + inum(s.reconnects) + "},\n";

  if (report.via_proxy) {
    const loadgen::LoadGenResult& lg = report.loadgen;
    out += "\"proxy\": {\"membership_generation\": " +
           inum(static_cast<int64_t>(report.membership_generation)) +
           ", \"offered_rps\": " + num(lg.offered_rps) +
           ", \"achieved_rps\": " + num(lg.achieved_rps) +
           ", \"scheduled\": " + inum(lg.scheduled) +
           ", \"completed\": " + inum(lg.completed) +
           ", \"errors\": " + inum(lg.errors) +
           ", \"failed_conns\": " + inum(lg.failed_conns) +
           ", \"abandoned\": " + inum(lg.abandoned) +
           ", \"p50_us\": " + num(lg.latency.p50_us) +
           ", \"p99_us\": " + num(lg.latency.p99_us) +
           ", \"stats\": {";
    bool first_stat = true;
    for (const auto& [name, value] : report.proxy_stats) {
      if (!first_stat) {
        out += ", ";
      }
      first_stat = false;
      out += EventTracer::JsonString(name) + ": " +
             inum(static_cast<int64_t>(value));
    }
    out += "}},\n";
  }

  out += "\"summary\": {\"via_proxy\": " +
         std::string(report.via_proxy ? "true" : "false") +
         ", \"pre_kill_hit_rate\": " + num(report.pre_kill_hit_rate) +
         ", \"final_hit_rate\": " + num(report.final_hit_rate) +
         ", \"recovered\": " + (report.recovered ? "true" : "false") +
         ", \"recovered_us\": " + inum(report.recovered_us) +
         ", \"total_ops\": " + inum(report.total_ops) +
         ", \"duration_s\": " + num(report.duration_s) + "}\n";
  out += "}\n";
  return out;
}

}  // namespace spotcache::fleet
