#include "src/fleet/kill_schedule.h"

#include <algorithm>

#include "src/fault/fault_injector.h"
#include "src/routing/hash.h"

namespace spotcache::fleet {

namespace {

/// The spot market's contractual notice (paper §2.1): warning fates are
/// expressed relative to it and scaled down to drill time.
constexpr Duration kSimWarningNotice = Duration::Minutes(2);

}  // namespace

KillSchedule BuildKillSchedule(const KillScheduleParams& params) {
  KillSchedule schedule;
  const FaultPlan plan = FaultPlan::Build(params.seed, params.scenario);
  FaultInjector injector(plan);  // only the pure hash helpers are used

  const Duration sim_window =
      params.scenario.window_end - params.scenario.window_start;
  const int64_t sim_us = std::max<int64_t>(sim_window.micros(), 1);

  for (const FaultEvent& ev : plan.events()) {
    if (ev.kind != FaultKind::kRevocationStorm) {
      continue;  // fleet mode realizes revocations; other families are
                 // control-loop-only and stay simulated
    }
    // Linear map of the event's position in the sim window onto the drill's
    // chaos window (integer arithmetic, so the map is exact and replayable).
    const int64_t offset_us = (ev.time - params.scenario.window_start).micros();
    const Duration kill_at =
        params.window_start +
        Duration::Micros(params.window_length.micros() * offset_us / sim_us);

    for (int slot = 0; slot < params.node_count; ++slot) {
      if (!injector.StormHitsMarket(ev, static_cast<size_t>(slot),
                                    static_cast<size_t>(params.node_count))) {
        continue;
      }
      KillAction action;
      action.kill_at = kill_at;
      action.slot = slot;
      // Per-(event, slot) warning fate: the id mixes the storm's salt so two
      // storms hitting the same slot can draw different fates.
      const WarningFate fate = injector.FateForWarning(
          HashCombine(static_cast<uint64_t>(slot) + 1, ev.salt));
      if (fate.suppress) {
        action.warned = false;
        action.warning_lead = Duration();
      } else {
        action.warned = true;
        action.late = fate.delay > Duration::Micros(0);
        const double remaining =
            std::max(0.0, 1.0 - fate.delay / kSimWarningNotice);
        action.warning_lead = params.warning_lead * remaining;
      }
      schedule.actions.push_back(action);
    }
  }

  std::sort(schedule.actions.begin(), schedule.actions.end(),
            [](const KillAction& a, const KillAction& b) {
              if (a.kill_at != b.kill_at) {
                return a.kill_at < b.kill_at;
              }
              return a.slot < b.slot;
            });
  return schedule;
}

}  // namespace spotcache::fleet
