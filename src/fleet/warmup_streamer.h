// WarmupStreamer: feed a replacement node its hot items over the memcached
// text protocol itself, bounded by a token bucket — Fig 4 made of real bytes.
//
// The paper's warm-up (§3.2) reads the backup's hot items and writes them to
// the replacement at a rate the backup's burstable network-token bucket can
// sustain. Here both ends are real spotcache_server processes: each item is
// one `get` round-trip against the source and one `set` against the
// destination, and the streamer refuses to put a byte on the wire until the
// bucket (src/cloud TokenBucket, charged in wire bytes) has accrued enough —
// so the transfer's wall-clock duration observably respects
//   bytes <= initial_tokens + rate * elapsed  (+ one item of slack).
//
// Connection failures mid-stream (the source being SIGKILLed is the
// backup-loss fault) surface as typed NetClient errors; the streamer
// reconnects with capped backoff and resumes at the current item. Items the
// source no longer holds are counted, not fatal: a warm-up after an
// unwarned kill (case 2) legitimately finds nothing on the dead primary and
// everything on the backup.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/util/time.h"

namespace spotcache::fleet {

struct WarmupConfig {
  /// Token accrual rate in wire bytes per second.
  double bytes_per_sec = 4.0 * 1024 * 1024;
  /// Bucket cap (burst allowance), bytes.
  double burst_bytes = 256.0 * 1024;
  /// Launch balance, bytes (EC2-style launch credits; 0 = start empty
  /// and pace from the first item).
  double initial_tokens = 0.0;
  /// Sleep granularity while waiting for tokens to accrue.
  Duration pace_quantum = Duration::Millis(2);
  /// Reconnect schedule for either endpoint dying mid-stream.
  net::ReconnectPolicy reconnect;
  /// Per-round-trip socket timeout.
  int op_timeout_ms = 1000;
};

struct WarmupResult {
  bool ok = false;
  std::string error;        // first fatal failure when !ok
  uint64_t items_copied = 0;
  uint64_t items_missing = 0;  // source did not hold the key
  uint64_t bytes_copied = 0;   // wire bytes charged to the bucket
  uint64_t reconnects = 0;     // successful re-dials across both endpoints
  double duration_s = 0.0;     // wall time of the streaming loop
  double token_rate = 0.0;     // echo of the config bound, for the report
  double token_burst = 0.0;
  double token_initial = 0.0;
};

class WarmupStreamer {
 public:
  explicit WarmupStreamer(const WarmupConfig& config) : config_(config) {}

  /// Streams `keys` from source to destination. Blocks for the duration of
  /// the (paced) transfer.
  WarmupResult Stream(const std::string& source_host, uint16_t source_port,
                      const std::string& dest_host, uint16_t dest_port,
                      const std::vector<std::string>& keys);

 private:
  WarmupConfig config_;
};

/// Wire bytes of one item transfer: the `get` request + VALUE reply on the
/// source leg and the `set` + STORED on the destination leg. This is the
/// amount charged to the token bucket per item.
uint64_t WarmupWireBytes(std::string_view key, std::string_view value);

}  // namespace spotcache::fleet
