#include "src/fleet/process_supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>

#include "src/net/readiness.h"

namespace spotcache::fleet {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepWall(Duration d) {
  if (d <= Duration::Micros(0)) {
    return;
  }
  timespec ts{};
  ts.tv_sec = d.micros() / 1'000'000;
  ts.tv_nsec = (d.micros() % 1'000'000) * 1000;
  ::nanosleep(&ts, nullptr);
}

/// Waits up to `timeout_ms` for the child to exit; returns true (and the
/// status) if it did.
bool WaitTimed(pid_t pid, int timeout_ms, int* status) {
  const int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const pid_t r = ::waitpid(pid, status, WNOHANG);
    if (r == pid) {
      return true;
    }
    if (r < 0) {
      return false;  // already reaped elsewhere
    }
    if (NowMs() >= deadline) {
      return false;
    }
    SleepWall(Duration::Millis(5));
  }
}

}  // namespace

std::string_view ToString(ProcessState s) {
  switch (s) {
    case ProcessState::kReady:
      return "ready";
    case ProcessState::kKilled:
      return "killed";
    case ProcessState::kExited:
      return "exited";
  }
  return "unknown";
}

ProcessSupervisor::ProcessSupervisor(const SupervisorConfig& config)
    : config_(config), retry_(config.retry, config.seed) {}

bool ProcessSupervisor::SpawnOnce(const std::string& label,
                                  const std::vector<std::string>& extra_args,
                                  ServerProcess* out, bool* bind_failure,
                                  std::string* error) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    *error = "pipe() failed: " + std::string(::strerror(errno));
    return false;
  }

  std::vector<std::string> args;
  args.push_back(config_.server_binary);
  for (const auto& a : config_.base_args) {
    args.push_back(a);
  }
  for (const auto& a : extra_args) {
    args.push_back(a);
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    *error = "fork() failed: " + std::string(::strerror(errno));
    return false;
  }
  if (pid == 0) {
    // Child: stdout -> pipe, then exec the server. Stderr is inherited so
    // crash output lands in the harness log.
    ::close(pipefd[0]);
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) {
      argv.push_back(a.data());
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed
  }

  // Parent: wait for the `listening <port>` readiness line (the shared
  // contract in src/net/readiness.h; banner noise is skipped for us).
  ::close(pipefd[1]);
  const int fd = pipefd[0];
  const int64_t deadline =
      NowMs() + config_.launch_timeout.micros() / 1000;
  net::ReadinessParser readiness;
  for (;;) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      break;  // launch timeout
    }
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(remaining));
    if (pr < 0 && errno != EINTR) {
      break;
    }
    if (pr > 0) {
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n > 0) {
        if (readiness.Feed(std::string_view(chunk, static_cast<size_t>(n)))) {
          out->pid = pid;
          out->port = *readiness.port();
          out->stdout_fd = fd;
          out->state = ProcessState::kReady;
          out->label = label;
          return true;
        }
        continue;
      }
      // EOF: the child exited before becoming ready. Classify its status.
      int status = 0;
      WaitTimed(pid, 1000, &status);
      ::close(fd);
      if (WIFEXITED(status) && WEXITSTATUS(status) == kServerBindFailureExit) {
        *bind_failure = true;
        *error = "child reported bind failure (port taken)";
      } else {
        *error = "child exited before readiness (status " +
                 std::to_string(status) + ")";
      }
      return false;
    }
  }

  // Timed out waiting for readiness: kill and reap.
  ::kill(pid, SIGKILL);
  int status = 0;
  WaitTimed(pid, 2000, &status);
  ::close(fd);
  *error = "launch timeout (" + std::to_string(config_.launch_timeout.micros() / 1000) +
           " ms) waiting for readiness line";
  return false;
}

SpawnResult ProcessSupervisor::Spawn(
    const std::string& label, const std::vector<std::string>& extra_args) {
  SpawnResult result;
  const uint64_t op_id = spawn_counter_++;
  for (int attempt = 1;; ++attempt) {
    result.attempts = attempt;
    std::string error;
    bool bind_failure = false;
    if (SpawnOnce(label, extra_args, &result.process, &bind_failure, &error)) {
      result.ok = true;
      ++spawned_;
      return result;
    }
    ++launch_failures_;
    result.bind_failure = result.bind_failure || bind_failure;
    result.error = error;
    if (retry_.Exhausted(attempt)) {
      return result;
    }
    SleepWall(retry_.Delay(op_id, attempt));
  }
}

void ProcessSupervisor::Reap(ServerProcess& process, ProcessState final_state) {
  if (process.pid > 0) {
    int status = 0;
    if (!WaitTimed(process.pid, 5000, &status)) {
      // Last resort: a process ignoring SIGKILL does not exist on Linux;
      // this path only covers waitpid races.
      ::waitpid(process.pid, &status, 0);
    }
    process.exit_status = status;
    process.pid = -1;
  }
  if (process.stdout_fd >= 0) {
    ::close(process.stdout_fd);
    process.stdout_fd = -1;
  }
  process.state = final_state;
}

void ProcessSupervisor::Kill(ServerProcess& process) {
  if (process.pid > 0) {
    ::kill(process.pid, SIGKILL);
    ++killed_;
  }
  Reap(process, ProcessState::kKilled);
}

int ProcessSupervisor::Terminate(ServerProcess& process, Duration grace) {
  if (process.pid > 0) {
    ::kill(process.pid, SIGTERM);
    int status = 0;
    if (WaitTimed(process.pid, static_cast<int>(grace.micros() / 1000),
                  &status)) {
      process.exit_status = status;
      process.pid = -1;
      if (process.stdout_fd >= 0) {
        ::close(process.stdout_fd);
        process.stdout_fd = -1;
      }
      process.state = ProcessState::kExited;
      return status;
    }
    ::kill(process.pid, SIGKILL);
  }
  Reap(process, ProcessState::kExited);
  return process.exit_status;
}

std::string ProcessSupervisor::DrainOutput(ServerProcess& process) {
  std::string out;
  if (process.stdout_fd < 0) {
    return out;
  }
  const int flags = ::fcntl(process.stdout_fd, F_GETFL, 0);
  ::fcntl(process.stdout_fd, F_SETFL, flags | O_NONBLOCK);
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(process.stdout_fd, chunk, sizeof(chunk));
    if (n <= 0) {
      break;
    }
    out.append(chunk, static_cast<size_t>(n));
  }
  ::fcntl(process.stdout_fd, F_SETFL, flags);
  return out;
}

}  // namespace spotcache::fleet
