// The determinism boundary of fleet mode: WHAT gets killed WHEN is a pure
// function of (seed, scenario); what the bytes do afterwards is wall-clock.
//
// BuildKillSchedule maps a PR-1 FaultPlan onto the drill's wall-clock chaos
// window: every kRevocationStorm event becomes one or more KillActions
// (which primary slots the storm hits comes from the same seeded hashing the
// simulator uses, via FaultInjector::StormHitsMarket with primaries standing
// in for markets), and each action's warning fate — suppressed (Fig 4 case
// 2) or delivered with full / reduced lead (cases 1a/1b) — comes from
// FaultInjector::FateForWarning, keyed by the victim slot. Building the same
// (seed, scenario, node_count, window) twice yields identical schedules; the
// replay half of test_fleet_drill pins this.

#pragma once

#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/util/time.h"

namespace spotcache::fleet {

/// One planned SIGKILL of a primary slot, in drill-relative wall time.
struct KillAction {
  Duration kill_at;       // offset from drill start
  int slot = 0;           // primary slot index (the ring node it owns)
  bool warned = true;     // false = missed warning (Fig 4 case 2)
  bool late = false;      // warning delivered with reduced lead
  /// Lead between the revocation warning and the kill (the scaled
  /// "2-minute notice"); reduced when the warning is late, zero if !warned.
  Duration warning_lead;

  bool operator==(const KillAction&) const = default;
};

struct KillSchedule {
  std::vector<KillAction> actions;  // sorted by kill_at, then slot

  bool operator==(const KillSchedule&) const = default;
};

struct KillScheduleParams {
  uint64_t seed = 0;
  FaultScenarioSpec scenario;
  /// Primary slots in the fleet (storm targets).
  int node_count = 1;
  /// Chaos window in drill wall time: faults land in
  /// [window_start, window_start + window_length).
  Duration window_start = Duration::Millis(500);
  Duration window_length = Duration::Seconds(2);
  /// Full warning lead at drill scale (the 2-minute notice, compressed).
  Duration warning_lead = Duration::Millis(600);
};

/// Pure: same params -> same schedule, independently of any live state.
KillSchedule BuildKillSchedule(const KillScheduleParams& params);

}  // namespace spotcache::fleet
