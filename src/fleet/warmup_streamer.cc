#include "src/fleet/warmup_streamer.h"

#include <time.h>

#include <chrono>

#include "src/cloud/token_bucket.h"

namespace spotcache::fleet {

namespace {

void SleepWall(Duration d) {
  if (d <= Duration::Micros(0)) {
    return;
  }
  timespec ts{};
  ts.tv_sec = d.micros() / 1'000'000;
  ts.tv_nsec = (d.micros() % 1'000'000) * 1000;
  ::nanosleep(&ts, nullptr);
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True for transport failures a reconnect can heal.
bool Reconnectable(net::NetClientError e) {
  switch (e) {
    case net::NetClientError::kReset:
    case net::NetClientError::kPipe:
    case net::NetClientError::kClosed:
    case net::NetClientError::kRefused:
      return true;
    default:
      return false;
  }
}

}  // namespace

uint64_t WarmupWireBytes(std::string_view key, std::string_view value) {
  // get <key>\r\n  +  VALUE <key> <flags> <bytes>\r\n<value>\r\nEND\r\n
  const uint64_t source_leg = 4 + key.size() + 2 +        // get request
                              6 + key.size() + 8 + 2 +    // VALUE header (approx flags/bytes digits)
                              value.size() + 2 + 5;       // payload + END
  // set <key> 0 0 <bytes>\r\n<value>\r\n  +  STORED\r\n
  const uint64_t dest_leg = 4 + key.size() + 8 + 2 + value.size() + 2 + 8;
  return source_leg + dest_leg;
}

WarmupResult WarmupStreamer::Stream(const std::string& source_host,
                                    uint16_t source_port,
                                    const std::string& dest_host,
                                    uint16_t dest_port,
                                    const std::vector<std::string>& keys) {
  WarmupResult result;
  result.token_rate = config_.bytes_per_sec;
  result.token_burst = config_.burst_bytes;
  result.token_initial = config_.initial_tokens;

  net::NetClient source;
  net::NetClient dest;
  if (!source.Connect(source_host, source_port, config_.op_timeout_ms)) {
    result.error = "warmup source connect failed: " +
                   std::string(ToString(source.last_error()));
    return result;
  }
  if (!dest.Connect(dest_host, dest_port, config_.op_timeout_ms)) {
    result.error = "warmup dest connect failed: " +
                   std::string(ToString(dest.last_error()));
    return result;
  }

  // The bucket runs on a wall-anchored clock: SimTime zero = stream start.
  TokenBucket bucket(config_.bytes_per_sec * 3600.0, config_.burst_bytes,
                     config_.initial_tokens);
  const int64_t start_us = NowUs();
  auto now = [&] { return SimTime::FromMicros(NowUs() - start_us); };

  for (const std::string& key : keys) {
    // --- Source leg: read the item (reconnect-and-retry once per failure
    // family; a key that is genuinely gone counts as missing). ---
    net::NetClient::GetResult item;
    for (int tries = 0;; ++tries) {
      item = source.Get(key);
      if (item.found || source.last_error() == net::NetClientError::kNone) {
        break;
      }
      if (tries >= 1 || !Reconnectable(source.last_error()) ||
          !source.Reconnect(config_.reconnect)) {
        result.error = "warmup source read failed: " +
                       std::string(ToString(source.last_error()));
        result.duration_s = static_cast<double>(NowUs() - start_us) / 1e6;
        return result;
      }
      ++result.reconnects;
    }
    if (!item.found) {
      ++result.items_missing;
      continue;
    }

    // --- Pace: wait for the bucket to cover this item's wire bytes. ---
    const uint64_t wire = WarmupWireBytes(key, item.value);
    bucket.AdvanceTo(now());
    while (!bucket.TryConsume(static_cast<double>(wire))) {
      SleepWall(config_.pace_quantum);
      bucket.AdvanceTo(now());
    }

    // --- Destination leg: write it (same reconnect discipline). ---
    for (int tries = 0;; ++tries) {
      if (dest.Set(key, item.value, item.flags)) {
        break;
      }
      if (tries >= 1 || !Reconnectable(dest.last_error()) ||
          !dest.Reconnect(config_.reconnect)) {
        result.error = "warmup dest write failed: " +
                       std::string(ToString(dest.last_error()));
        result.duration_s = static_cast<double>(NowUs() - start_us) / 1e6;
        return result;
      }
      ++result.reconnects;
    }
    ++result.items_copied;
    result.bytes_copied += wire;
  }

  result.duration_s = static_cast<double>(NowUs() - start_us) / 1e6;
  result.ok = true;
  return result;
}

}  // namespace spotcache::fleet
