// Discrete-event engine.
//
// A time-ordered queue of callbacks with a deterministic tie-break (insertion
// sequence), driving the fine-grained simulations (failure recovery, token
// dynamics). Long-horizon experiments instead advance in fixed control slots;
// both styles share this clock.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/time.h"

namespace spotcache {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `t` (>= now, else clamped to now).
  void Schedule(SimTime t, Callback cb);
  /// Schedules `cb` `d` after the current time.
  void ScheduleAfter(Duration d, Callback cb) { Schedule(now_ + d, std::move(cb)); }

  /// Runs the earliest event, advancing the clock to it. Returns false if the
  /// queue was empty.
  bool RunNext();

  /// Runs all events with time <= `t`; the clock finishes exactly at `t`.
  void RunUntil(SimTime t);

  /// Runs until the queue drains or the horizon is reached.
  void RunAll(SimTime horizon);

  SimTime now() const { return now_; }
  size_t pending() const { return queue_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace spotcache
