#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace spotcache {

void EventQueue::Schedule(SimTime t, Callback cb) {
  queue_.push({std::max(t, now_), next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the callback must be moved out before
  // pop, so copy the entry (Callback is cheap to move, not copy — use const
  // cast via re-push-free extraction).
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  ++executed_;
  entry.cb();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    RunNext();
  }
  now_ = std::max(now_, t);
}

void EventQueue::RunAll(SimTime horizon) {
  while (!queue_.empty() && queue_.top().time <= horizon) {
    RunNext();
  }
  now_ = std::max(now_, horizon);
}

}  // namespace spotcache
