// The performance function phi(lambda, vCPU, RAM, net) of paper §4.1.
//
// The paper allows phi to be "theoretically modeled, e.g., via queuing
// analysis"; we use an M/M/1-processor-sharing approximation per node:
//
//   rho   = max(lambda / (vcpus * mu), lambda * item_bits / net_bits)
//   mean  = base + service / (1 - rho)          (rho < 1)
//   p95   = base + 3.0 * service / (1 - rho)    (exponential sojourn: ln 20)
//
// Saturated nodes (rho >= 1) report a large clipped latency; the experiment
// harness counts the excess arrivals as SLO-affected. Misses pay an extra
// back-end penalty. The inverse, MaxRate, converts a latency bound into the
// per-instance max arrival rate — the linear constraint (2) of the paper.

#pragma once

#include "src/cloud/resources.h"
#include "src/util/time.h"

namespace spotcache {

struct LatencyModelParams {
  /// Sustained memcached-style service rate per vCPU (ops/s).
  double service_rate_per_vcpu = 20'000.0;
  /// Network/stack floor added to every request.
  Duration base_latency = Duration::Micros(150);
  /// Effective per-request wire cost used for network occupancy. Smaller
  /// than the 4 KB stored item: profiled per-GET traffic with pipelining and
  /// protocol batching is ~1 KB, which leaves memcached CPU-bound on the
  /// candidate types, matching the paper's CPU-and-RAM framing (its footnote
  /// 4 drops network from the allocation discussion for the same reason).
  double item_size_bytes = 1024.0;
  /// Extra latency for a miss served from the persistent back-end.
  Duration miss_penalty = Duration::Millis(5);
  /// Latency reported when a node is saturated (rho >= max_utilization).
  Duration saturated_latency = Duration::Millis(50);
  /// Utilization ceiling used when inverting the model (headroom for bursts).
  double max_utilization = 0.95;
};

struct NodeLatency {
  Duration mean;
  Duration p95;
  bool saturated = false;
  double utilization = 0.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyModelParams params = {}) : params_(params) {}

  const LatencyModelParams& params() const { return params_; }

  /// Utilization of the binding resource for arrival rate `lambda` (ops/s)
  /// on `capacity`.
  double Utilization(double lambda, const ResourceVector& capacity) const;

  /// Hit latency for arrival rate `lambda` on a node with `capacity`.
  NodeLatency HitLatency(double lambda, const ResourceVector& capacity) const;

  /// Mean latency blending hits and misses: hit_fraction of requests hit
  /// in-memory, the rest also pay the back-end penalty (paper's
  /// F(alpha)*l_hit + (1-F(alpha))*(l_hit + l_miss)).
  Duration BlendedMean(double lambda, const ResourceVector& capacity,
                       double hit_fraction) const;

  /// Largest per-instance arrival rate such that the *mean* hit latency stays
  /// within `bound` at utilization <= max_utilization. This is lambda^{sb} of
  /// the paper's constraint (2). Returns 0 if the bound is below the floor.
  double MaxRate(const ResourceVector& capacity, Duration bound) const;

  /// The hit-latency bound l_HIT implied by an overall target l_TGT and hit
  /// fraction F(alpha):  F*l + (1-F)*(l+miss) <= TGT  =>  l <= TGT-(1-F)*miss.
  Duration HitBoundFor(Duration target, double hit_fraction) const;

 private:
  LatencyModelParams params_;
};

}  // namespace spotcache
