#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace spotcache {

double TimeSeries::Mean() const {
  if (points_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (const auto& p : points_) {
    s += p.value;
  }
  return s / static_cast<double>(points_.size());
}

double TimeSeries::Max() const {
  double m = 0.0;
  for (const auto& p : points_) {
    m = std::max(m, p.value);
  }
  return m;
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& p : points_) {
    v.push_back(p.value);
  }
  return v;
}

Duration SloTracker::MeanLatency() const {
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& s : slots_) {
    weighted += s.mean_latency.seconds() * s.arrival_rate;
    total += s.arrival_rate;
  }
  if (total <= 0.0) {
    return Duration::Micros(0);
  }
  return Duration::FromSecondsF(weighted / total);
}

Duration SloTracker::MaxP95() const {
  Duration m;
  for (const auto& s : slots_) {
    m = std::max(m, s.p95_latency);
  }
  return m;
}

Duration SloTracker::WeightedP95() const {
  // Percentile of per-slot p95s, weighted by arrivals: sort by p95 and find
  // the 95th percentile of request mass.
  std::vector<std::pair<double, double>> entries;  // (p95 seconds, weight)
  double total = 0.0;
  for (const auto& s : slots_) {
    entries.emplace_back(s.p95_latency.seconds(), s.arrival_rate);
    total += s.arrival_rate;
  }
  if (total <= 0.0 || entries.empty()) {
    return Duration::Micros(0);
  }
  std::sort(entries.begin(), entries.end());
  double acc = 0.0;
  for (const auto& [lat, w] : entries) {
    acc += w;
    if (acc >= 0.95 * total) {
      return Duration::FromSecondsF(lat);
    }
  }
  return Duration::FromSecondsF(entries.back().first);
}

double SloTracker::DaysViolatedFraction(double threshold) const {
  if (slots_.empty()) {
    return 0.0;
  }
  // Group slots by simulation day; a day is violated if its request-weighted
  // affected fraction exceeds the threshold.
  std::map<int64_t, std::pair<double, double>> days;  // day -> (affected, total)
  for (const auto& s : slots_) {
    const int64_t day = static_cast<int64_t>(s.slot_start.days());
    auto& [affected, total] = days[day];
    affected += s.affected_fraction * s.arrival_rate;
    total += s.arrival_rate;
  }
  int violated = 0;
  for (const auto& [day, at] : days) {
    const auto& [affected, total] = at;
    if (total > 0.0 && affected / total > threshold) {
      ++violated;
    }
  }
  return static_cast<double>(violated) / static_cast<double>(days.size());
}

double SloTracker::AffectedRequestFraction() const {
  double affected = 0.0;
  double total = 0.0;
  for (const auto& s : slots_) {
    affected += s.affected_fraction * s.arrival_rate;
    total += s.arrival_rate;
  }
  return total > 0.0 ? affected / total : 0.0;
}

double SloTracker::TotalCost() const {
  double c = 0.0;
  for (const auto& s : slots_) {
    c += s.cost_dollars;
  }
  return c;
}

std::string ToString(const FaultCounters& c) {
  std::string out;
  out += "storm_revocations=" + std::to_string(c.storm_revocations);
  out += " warnings_suppressed=" + std::to_string(c.warnings_suppressed);
  out += " warnings_delayed=" + std::to_string(c.warnings_delayed);
  out += " backup_losses=" + std::to_string(c.backup_losses);
  out += " token_exhaustions=" + std::to_string(c.token_exhaustions);
  out += " launch_failures=" + std::to_string(c.launch_failures);
  return out;
}

}  // namespace spotcache
