#include "src/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace spotcache {

double TimeSeries::Mean() const {
  if (points_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (const auto& p : points_) {
    s += p.value;
  }
  return s / static_cast<double>(points_.size());
}

double TimeSeries::Max() const {
  double m = 0.0;
  for (const auto& p : points_) {
    m = std::max(m, p.value);
  }
  return m;
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> v;
  v.reserve(points_.size());
  for (const auto& p : points_) {
    v.push_back(p.value);
  }
  return v;
}

Duration SloTracker::MeanLatency() const {
  double weighted = 0.0;
  double total = 0.0;
  for (const auto& s : slots_) {
    weighted += s.mean_latency.seconds() * s.arrival_rate;
    total += s.arrival_rate;
  }
  if (total <= 0.0) {
    return Duration::Micros(0);
  }
  return Duration::FromSecondsF(weighted / total);
}

Duration SloTracker::MaxP95() const {
  Duration m;
  for (const auto& s : slots_) {
    m = std::max(m, s.p95_latency);
  }
  return m;
}

Duration SloTracker::WeightedP95() const {
  // Percentile of per-slot p95s, weighted by arrivals: sort by p95 and find
  // the 95th percentile of request mass.
  std::vector<std::pair<double, double>> entries;  // (p95 seconds, weight)
  double total = 0.0;
  for (const auto& s : slots_) {
    entries.emplace_back(s.p95_latency.seconds(), s.arrival_rate);
    total += s.arrival_rate;
  }
  if (total <= 0.0 || entries.empty()) {
    return Duration::Micros(0);
  }
  std::sort(entries.begin(), entries.end());
  double acc = 0.0;
  for (const auto& [lat, w] : entries) {
    acc += w;
    if (acc >= 0.95 * total) {
      return Duration::FromSecondsF(lat);
    }
  }
  return Duration::FromSecondsF(entries.back().first);
}

double SloTracker::DaysViolatedFraction(double threshold) const {
  if (slots_.empty()) {
    return 0.0;
  }
  // Group slots by simulation day; a day is violated if its request-weighted
  // affected fraction exceeds the threshold.
  std::map<int64_t, std::pair<double, double>> days;  // day -> (affected, total)
  for (const auto& s : slots_) {
    const int64_t day = static_cast<int64_t>(s.slot_start.days());
    auto& [affected, total] = days[day];
    affected += s.affected_fraction * s.arrival_rate;
    total += s.arrival_rate;
  }
  int violated = 0;
  for (const auto& [day, at] : days) {
    const auto& [affected, total] = at;
    if (total > 0.0 && affected / total > threshold) {
      ++violated;
    }
  }
  return static_cast<double>(violated) / static_cast<double>(days.size());
}

double SloTracker::AffectedRequestFraction() const {
  double affected = 0.0;
  double total = 0.0;
  for (const auto& s : slots_) {
    affected += s.affected_fraction * s.arrival_rate;
    total += s.arrival_rate;
  }
  return total > 0.0 ? affected / total : 0.0;
}

double SloTracker::ShedRequestFraction() const {
  double shed = 0.0;
  double total = 0.0;
  for (const auto& s : slots_) {
    shed += s.shed_fraction * s.arrival_rate;
    total += s.arrival_rate;
  }
  return total > 0.0 ? shed / total : 0.0;
}

double SloTracker::TotalCost() const {
  double c = 0.0;
  for (const auto& s : slots_) {
    c += s.cost_dollars;
  }
  return c;
}

void SloTracker::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) {
    return;
  }
  registry->GetGauge("slo/mean_latency_us")->Set(MeanLatency().seconds() * 1e6);
  registry->GetGauge("slo/weighted_p95_us")->Set(WeightedP95().seconds() * 1e6);
  registry->GetGauge("slo/worst_p95_us")->Set(MaxP95().seconds() * 1e6);
  registry->GetGauge("slo/days_violated_fraction")->Set(DaysViolatedFraction());
  registry->GetGauge("slo/affected_request_fraction")
      ->Set(AffectedRequestFraction());
  // Only registered once shedding actually happened, so runs with the
  // resilience layer disabled export byte-identical snapshots.
  if (const double shed = ShedRequestFraction(); shed > 0.0) {
    registry->GetGauge("slo/shed_request_fraction")->Set(shed);
  }
  registry->GetGauge("slo/total_cost_dollars")->Set(TotalCost());
  PublishFaults(faults_, registry);
}

namespace {
// Registry names, in the order the one-line rendering reports them.
constexpr std::pair<const char*, const char*> kFaultMetrics[] = {
    {"fault/storm_revocations", "storm_revocations"},
    {"fault/warnings_suppressed", "warnings_suppressed"},
    {"fault/warnings_delayed", "warnings_delayed"},
    {"fault/backup_losses", "backup_losses"},
    {"fault/token_exhaustions", "token_exhaustions"},
    {"fault/launch_failures", "launch_failures"},
};
}  // namespace

void PublishFaults(const FaultCounters& c, MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->GetCounter("fault/storm_revocations")->Set(c.storm_revocations);
  registry->GetCounter("fault/warnings_suppressed")->Set(c.warnings_suppressed);
  registry->GetCounter("fault/warnings_delayed")->Set(c.warnings_delayed);
  registry->GetCounter("fault/backup_losses")->Set(c.backup_losses);
  registry->GetCounter("fault/token_exhaustions")->Set(c.token_exhaustions);
  registry->GetCounter("fault/launch_failures")->Set(c.launch_failures);
}

std::string RenderFaultCounters(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [metric, label] : kFaultMetrics) {
    if (!out.empty()) {
      out += ' ';
    }
    out += label;
    out += '=';
    out += std::to_string(registry.CounterValue(metric));
  }
  return out;
}

}  // namespace spotcache
