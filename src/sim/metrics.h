// Experiment metrics: time series and SLO-violation accounting.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/obs/metrics_registry.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace spotcache {

/// An append-only (time, value) series.
class TimeSeries {
 public:
  struct Point {
    SimTime time;
    double value;
  };

  void Add(SimTime t, double v) { points_.push_back({t, v}); }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  double Mean() const;
  double Max() const;
  /// Values only, for percentile computation.
  std::vector<double> Values() const;

 private:
  std::vector<Point> points_;
};

/// Per-slot performance record produced by the experiment harness.
struct SlotPerf {
  SimTime slot_start;
  double arrival_rate = 0.0;       // offered ops/s
  double affected_fraction = 0.0;  // requests impacted by failures/saturation
  Duration mean_latency;
  Duration p95_latency;
  double hit_fraction = 1.0;
  /// Fraction of arrivals shed by admission control (resilience layer).
  double shed_fraction = 0.0;
  double cost_dollars = 0.0;
};

/// Aggregates slot records into the paper's reporting units: average/p95
/// latency and the fraction of *days* on which more than `threshold` of
/// requests were affected by bid failures (Figure 7's y-axis).
class SloTracker {
 public:
  void Record(const SlotPerf& slot) { slots_.push_back(slot); }
  const std::vector<SlotPerf>& slots() const { return slots_; }

  /// Request-weighted mean latency over the whole run.
  Duration MeanLatency() const;
  /// Worst p95 across slots (conservative tail summary).
  Duration MaxP95() const;
  /// Request-weighted p95: percentile of per-slot p95 weighted by arrivals.
  Duration WeightedP95() const;

  /// Fraction of days where the affected-request fraction exceeded
  /// `threshold` (paper uses 1%).
  double DaysViolatedFraction(double threshold = 0.01) const;

  /// Fraction of all requests affected by failures.
  double AffectedRequestFraction() const;

  /// Fraction of all requests shed by admission control (0 when the
  /// resilience layer is disabled).
  double ShedRequestFraction() const;

  double TotalCost() const;

  /// Per-fault counters from the run's FaultInjector (zero without faults).
  void RecordFaults(const FaultCounters& counters) { faults_ = counters; }
  const FaultCounters& faults() const { return faults_; }

  /// Publishes the run summary onto `registry`: slo/* gauges (request-weighted
  /// mean and p95, violation-day fraction, affected fraction, total cost) and
  /// the fault/* counters — one pipeline for SLOs, faults, and costs.
  void PublishTo(MetricsRegistry* registry) const;

 private:
  std::vector<SlotPerf> slots_;
  FaultCounters faults_;
};

/// Registers the per-fault counters on `registry` as fault/<name> counters.
/// This is the single source for fault reporting: bench_fault_storm and
/// ExperimentResult both render from the registry.
void PublishFaults(const FaultCounters& c, MetricsRegistry* registry);

/// One-line human-readable rendering of the registry's fault/* counters
/// ("storm_revocations=N warnings_suppressed=N ...").
std::string RenderFaultCounters(const MetricsRegistry& registry);

}  // namespace spotcache
