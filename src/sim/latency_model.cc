#include "src/sim/latency_model.h"

#include <algorithm>
#include <cmath>

namespace spotcache {

namespace {
// p95 of an exponential sojourn is ln(20) ~ 3.0 times its mean.
constexpr double kP95Factor = 3.0;
}  // namespace

double LatencyModel::Utilization(double lambda, const ResourceVector& capacity) const {
  if (lambda <= 0.0) {
    return 0.0;
  }
  const double cpu_rate = capacity.vcpus * params_.service_rate_per_vcpu;
  const double net_rate =
      capacity.net_mbps * 1e6 / (params_.item_size_bytes * 8.0);
  const double rho_cpu = cpu_rate > 0.0 ? lambda / cpu_rate : 1e9;
  const double rho_net = net_rate > 0.0 ? lambda / net_rate : 1e9;
  return std::max(rho_cpu, rho_net);
}

NodeLatency LatencyModel::HitLatency(double lambda,
                                     const ResourceVector& capacity) const {
  NodeLatency out;
  const double rho = Utilization(lambda, capacity);
  out.utilization = rho;
  const double service_s = 1.0 / params_.service_rate_per_vcpu;
  if (rho >= 1.0) {
    out.saturated = true;
    out.mean = params_.saturated_latency;
    out.p95 = params_.saturated_latency * 2.0;
    return out;
  }
  const double q_s = service_s / (1.0 - rho);
  out.mean = params_.base_latency + Duration::FromSecondsF(q_s);
  out.p95 = params_.base_latency + Duration::FromSecondsF(kP95Factor * q_s);
  // Clip to the saturated ceiling so near-1 utilizations don't explode.
  out.mean = std::min(out.mean, params_.saturated_latency);
  out.p95 = std::min(out.p95, params_.saturated_latency * 2.0);
  return out;
}

Duration LatencyModel::BlendedMean(double lambda, const ResourceVector& capacity,
                                   double hit_fraction) const {
  const NodeLatency hit = HitLatency(lambda, capacity);
  const double miss_fraction = std::clamp(1.0 - hit_fraction, 0.0, 1.0);
  return hit.mean + params_.miss_penalty * miss_fraction;
}

Duration LatencyModel::HitBoundFor(Duration target, double hit_fraction) const {
  const double miss_fraction = std::clamp(1.0 - hit_fraction, 0.0, 1.0);
  const Duration bound = target - params_.miss_penalty * miss_fraction;
  return std::max(bound, Duration::Micros(0));
}

double LatencyModel::MaxRate(const ResourceVector& capacity, Duration bound) const {
  const double service_s = 1.0 / params_.service_rate_per_vcpu;
  const double floor_s = params_.base_latency.seconds() + service_s;
  if (bound.seconds() <= floor_s) {
    return 0.0;
  }
  // Invert mean = base + service/(1-rho) for rho, then cap utilization.
  const double q_s = bound.seconds() - params_.base_latency.seconds();
  double rho = 1.0 - service_s / q_s;
  rho = std::clamp(rho, 0.0, params_.max_utilization);

  const double cpu_rate = capacity.vcpus * params_.service_rate_per_vcpu;
  const double net_rate =
      capacity.net_mbps * 1e6 / (params_.item_size_bytes * 8.0);
  return rho * std::min(cpu_rate, net_rate);
}

}  // namespace spotcache
