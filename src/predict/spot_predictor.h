// Spot feature prediction (paper §3.1).
//
// Both predictors consume a price trace and answer, for a (market, bid) at
// time t: "how long will a bid-b instance placed now live, and what will it
// cost per hour while it lives?"
//
//   * LifetimePredictor — the paper's model: build the empirical distribution
//     of contiguous below-bid interval lengths L(b) over a sliding history
//     window and predict a small percentile of it (conservative: with high
//     probability the instance lives at least that long). The average price
//     during a lifetime, p-bar(b), is predicted by the window mean of
//     per-interval average prices.
//   * CdfPredictor — the literature baseline: L-hat = W * P(price <= b) over
//     the window (discarding contiguity) and p-hat = E[price | price <= b].
//
// AssessPredictor computes the paper's Table 2 metrics: the over-estimation
// rate f (predicted lifetime exceeded the realized residual lifetime) and the
// mean relative deviation xi of the price prediction.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cloud/spot_market.h"
#include "src/util/time.h"

namespace spotcache {

struct SpotPrediction {
  /// Predicted (residual) lifetime of an instance procured at this bid.
  Duration lifetime;
  /// Predicted average spot price during the lifetime ($/hour).
  double avg_price = 0.0;
  /// False when the window offers no evidence the bid ever succeeds.
  bool usable = false;
};

class SpotFeaturePredictor {
 public:
  virtual ~SpotFeaturePredictor() = default;
  virtual SpotPrediction Predict(const PriceTrace& trace, SimTime now,
                                 double bid) const = 0;
  virtual std::string_view name() const = 0;
};

/// One completed below-bid interval with its average price.
struct LifetimeSample {
  Duration length;
  double avg_price;
};

/// Extracts the below-bid intervals of `trace` overlapping [from, to].
/// Intervals are clipped to the window; a window fully below the bid yields a
/// single window-length sample.
std::vector<LifetimeSample> ExtractLifetimes(const PriceTrace& trace, SimTime from,
                                             SimTime to, double bid);

/// The paper's lifetime-distribution predictor.
///
/// The control loop calls Predict for every (market, bid) option at every
/// slot boundary, with `now` advancing by one slot each time. A full window
/// rescan is O(window) per call; in incremental mode (the default) the
/// predictor keeps per-(trace, bid) interval state and only classifies the
/// price samples that arrived since the previous call — O(new data) amortized.
/// The incremental path replays the exact rescan arithmetic (same clipping,
/// same chronological sample order, same AveragePrice calls for clipped
/// intervals), so predictions are bit-identical in either mode.
///
/// Incremental mode mutates internal state from const Predict; an instance
/// must not be shared across threads (each experiment cell builds its own).
class LifetimePredictor : public SpotFeaturePredictor {
 public:
  struct Config {
    Duration history_window = Duration::Days(7);
    /// Percentile of the L(b) distribution used as the prediction (paper: a
    /// small percentile such as the 5th).
    double lifetime_percentile = 0.05;
    /// Maintain sliding-window interval state per (trace, bid) instead of
    /// rescanning the whole window on every call.
    bool incremental = true;
    /// Diagnostic: re-derive every incremental prediction with the full
    /// rescan and abort on any bitwise mismatch. Slow; for tests.
    bool cross_check = false;
  };

  LifetimePredictor() : LifetimePredictor(Config{}) {}
  explicit LifetimePredictor(const Config& config) : config_(config) {}

  SpotPrediction Predict(const PriceTrace& trace, SimTime now,
                         double bid) const override;
  std::string_view name() const override { return "lifetime-model"; }

  const Config& config() const { return config_; }

 private:
  // Sliding-window scan state for one (trace, bid). `completed` holds the
  // below-bid intervals finished so far (unclipped true boundaries, plus the
  // cached full-interval average price); `open_begin` is the start of an
  // interval that was still below the bid at `processed`. Everything in
  // [low_water, processed) has been classified.
  struct IntervalState {
    struct Rec {
      SimTime begin;
      SimTime end;
      double avg_price;
    };
    std::deque<Rec> completed;
    bool open = false;
    SimTime open_begin;
    SimTime processed;
    SimTime low_water;
    bool initialized = false;
  };
  struct TraceBidKey {
    const PriceTrace* trace;
    double bid;
    bool operator==(const TraceBidKey&) const = default;
  };
  struct TraceBidKeyHash {
    size_t operator()(const TraceBidKey& k) const;
  };

  SpotPrediction PredictIncremental(const PriceTrace& trace, SimTime now,
                                    SimTime from, double bid) const;

  Config config_;
  mutable std::unordered_map<TraceBidKey, IntervalState, TraceBidKeyHash>
      states_;
};

class CdfPredictor : public SpotFeaturePredictor {
 public:
  struct Config {
    Duration history_window = Duration::Days(7);
  };

  CdfPredictor() : CdfPredictor(Config{}) {}
  explicit CdfPredictor(const Config& config) : config_(config) {}

  SpotPrediction Predict(const PriceTrace& trace, SimTime now,
                         double bid) const override;
  std::string_view name() const override { return "cdf-baseline"; }

 private:
  Config config_;
};

/// Table 2 metrics for one predictor on one (market, bid).
struct PredictorAssessment {
  double overestimation_rate = 0.0;  // f^s(b)
  double price_rel_deviation = 0.0;  // xi^s(b)
  int evaluations = 0;
};

/// Walks [eval_start, eval_end] in `step` increments; at every instant where
/// the price is at or below the bid, compares the prediction against the
/// realized residual lifetime and realized average price.
PredictorAssessment AssessPredictor(const SpotFeaturePredictor& predictor,
                                    const PriceTrace& trace, double bid,
                                    SimTime eval_start, SimTime eval_end,
                                    Duration step);

}  // namespace spotcache
