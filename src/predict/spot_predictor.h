// Spot feature prediction (paper §3.1).
//
// Both predictors consume a price trace and answer, for a (market, bid) at
// time t: "how long will a bid-b instance placed now live, and what will it
// cost per hour while it lives?"
//
//   * LifetimePredictor — the paper's model: build the empirical distribution
//     of contiguous below-bid interval lengths L(b) over a sliding history
//     window and predict a small percentile of it (conservative: with high
//     probability the instance lives at least that long). The average price
//     during a lifetime, p-bar(b), is predicted by the window mean of
//     per-interval average prices.
//   * CdfPredictor — the literature baseline: L-hat = W * P(price <= b) over
//     the window (discarding contiguity) and p-hat = E[price | price <= b].
//
// AssessPredictor computes the paper's Table 2 metrics: the over-estimation
// rate f (predicted lifetime exceeded the realized residual lifetime) and the
// mean relative deviation xi of the price prediction.

#pragma once

#include <string_view>
#include <vector>

#include "src/cloud/spot_market.h"
#include "src/util/time.h"

namespace spotcache {

struct SpotPrediction {
  /// Predicted (residual) lifetime of an instance procured at this bid.
  Duration lifetime;
  /// Predicted average spot price during the lifetime ($/hour).
  double avg_price = 0.0;
  /// False when the window offers no evidence the bid ever succeeds.
  bool usable = false;
};

class SpotFeaturePredictor {
 public:
  virtual ~SpotFeaturePredictor() = default;
  virtual SpotPrediction Predict(const PriceTrace& trace, SimTime now,
                                 double bid) const = 0;
  virtual std::string_view name() const = 0;
};

/// One completed below-bid interval with its average price.
struct LifetimeSample {
  Duration length;
  double avg_price;
};

/// Extracts the below-bid intervals of `trace` overlapping [from, to].
/// Intervals are clipped to the window; a window fully below the bid yields a
/// single window-length sample.
std::vector<LifetimeSample> ExtractLifetimes(const PriceTrace& trace, SimTime from,
                                             SimTime to, double bid);

class LifetimePredictor : public SpotFeaturePredictor {
 public:
  struct Config {
    Duration history_window = Duration::Days(7);
    /// Percentile of the L(b) distribution used as the prediction (paper: a
    /// small percentile such as the 5th).
    double lifetime_percentile = 0.05;
  };

  LifetimePredictor() : LifetimePredictor(Config{}) {}
  explicit LifetimePredictor(const Config& config) : config_(config) {}

  SpotPrediction Predict(const PriceTrace& trace, SimTime now,
                         double bid) const override;
  std::string_view name() const override { return "lifetime-model"; }

  const Config& config() const { return config_; }

 private:
  Config config_;
};

class CdfPredictor : public SpotFeaturePredictor {
 public:
  struct Config {
    Duration history_window = Duration::Days(7);
  };

  CdfPredictor() : CdfPredictor(Config{}) {}
  explicit CdfPredictor(const Config& config) : config_(config) {}

  SpotPrediction Predict(const PriceTrace& trace, SimTime now,
                         double bid) const override;
  std::string_view name() const override { return "cdf-baseline"; }

 private:
  Config config_;
};

/// Table 2 metrics for one predictor on one (market, bid).
struct PredictorAssessment {
  double overestimation_rate = 0.0;  // f^s(b)
  double price_rel_deviation = 0.0;  // xi^s(b)
  int evaluations = 0;
};

/// Walks [eval_start, eval_end] in `step` increments; at every instant where
/// the price is at or below the bid, compares the prediction against the
/// realized residual lifetime and realized average price.
PredictorAssessment AssessPredictor(const SpotFeaturePredictor& predictor,
                                    const PriceTrace& trace, double bid,
                                    SimTime eval_start, SimTime eval_end,
                                    Duration step);

}  // namespace spotcache
