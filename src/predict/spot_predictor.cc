#include "src/predict/spot_predictor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/util/stats.h"

namespace spotcache {

namespace {

// Shared tail of both LifetimePredictor paths: the percentile and the window
// mean are computed from the sample list with identical floating-point order,
// so two paths that produce the same samples produce the same prediction.
SpotPrediction PredictFromSamples(const std::vector<LifetimeSample>& samples,
                                  double lifetime_percentile) {
  SpotPrediction pred;
  if (samples.empty()) {
    return pred;  // bid never succeeded in the window: unusable
  }
  std::vector<double> lengths;
  double price_sum = 0.0;
  lengths.reserve(samples.size());
  for (const auto& s : samples) {
    lengths.push_back(s.length.seconds());
    price_sum += s.avg_price;
  }
  pred.lifetime =
      Duration::FromSecondsF(Percentile(std::move(lengths), lifetime_percentile));
  pred.avg_price = price_sum / static_cast<double>(samples.size());
  pred.usable = true;
  return pred;
}

}  // namespace

std::vector<LifetimeSample> ExtractLifetimes(const PriceTrace& trace, SimTime from,
                                             SimTime to, double bid) {
  std::vector<LifetimeSample> out;
  if (to <= from) {
    return out;
  }
  SimTime cursor = from;
  while (cursor < to) {
    // Find the next below-bid stretch.
    const SimTime begin = trace.NextTimeAtOrBelow(cursor, bid);
    if (begin >= to) {
      break;
    }
    SimTime end = trace.NextTimeAbove(begin, bid);
    end = std::min(end, to);
    if (end > begin) {
      out.push_back({end - begin, trace.AveragePrice(begin, end)});
      cursor = end;
    } else {
      // Zero-length artifact (shouldn't happen with a well-formed trace);
      // step past it to guarantee progress.
      cursor = begin + Duration::Micros(1);
    }
  }
  return out;
}

size_t LifetimePredictor::TraceBidKeyHash::operator()(
    const TraceBidKey& k) const {
  uint64_t bits = 0;
  std::memcpy(&bits, &k.bid, sizeof(bits));
  const uint64_t ptr = reinterpret_cast<uintptr_t>(k.trace);
  return static_cast<size_t>((ptr ^ bits) * 0x9e3779b97f4a7c15ULL);
}

SpotPrediction LifetimePredictor::Predict(const PriceTrace& trace, SimTime now,
                                          double bid) const {
  const SimTime from = std::max(trace.start(), now - config_.history_window);
  if (!config_.incremental) {
    return PredictFromSamples(ExtractLifetimes(trace, from, now, bid),
                              config_.lifetime_percentile);
  }
  const SpotPrediction pred = PredictIncremental(trace, now, from, bid);
  if (config_.cross_check) {
    const SpotPrediction ref = PredictFromSamples(
        ExtractLifetimes(trace, from, now, bid), config_.lifetime_percentile);
    if (pred.usable != ref.usable || pred.lifetime != ref.lifetime ||
        pred.avg_price != ref.avg_price) {
      std::fprintf(stderr,
                   "LifetimePredictor cross-check failed at t=%lld bid=%.17g: "
                   "incremental {usable=%d life=%lld avg=%.17g} vs rescan "
                   "{usable=%d life=%lld avg=%.17g}\n",
                   static_cast<long long>(now.micros()), bid, pred.usable,
                   static_cast<long long>(pred.lifetime.micros()),
                   pred.avg_price, ref.usable,
                   static_cast<long long>(ref.lifetime.micros()),
                   ref.avg_price);
      std::abort();
    }
  }
  return pred;
}

SpotPrediction LifetimePredictor::PredictIncremental(const PriceTrace& trace,
                                                     SimTime now, SimTime from,
                                                     double bid) const {
  IntervalState& st = states_[TraceBidKey{&trace, bid}];

  // The state only covers [low_water, processed); a query outside that
  // (time moved backward, or the window widened) rebuilds from scratch.
  if (!st.initialized || from < st.low_water || now < st.processed) {
    st.completed.clear();
    st.open = false;
    st.processed = from;
    st.low_water = from;
    st.initialized = true;
  }

  // Retire intervals that slid out of the window. An interval ending exactly
  // at `from` contributes a zero-length clip, which the rescan also drops.
  while (!st.completed.empty() && st.completed.front().end <= from) {
    st.completed.pop_front();
  }
  st.low_water = from;

  // Classify the price samples in [processed, now). This mirrors
  // ExtractLifetimes exactly, including the zero-length artifact skip.
  while (st.processed < now) {
    if (!st.open) {
      const SimTime begin = trace.NextTimeAtOrBelow(st.processed, bid);
      if (begin >= now) {
        st.processed = now;
        break;
      }
      st.open = true;
      st.open_begin = begin;
      st.processed = begin;
    }
    const SimTime end = trace.NextTimeAbove(st.open_begin, bid);
    if (end <= st.open_begin) {
      st.open = false;
      st.processed = st.open_begin + Duration::Micros(1);
      continue;
    }
    if (end > now) {
      st.processed = now;  // still below the bid at `now`: leave it open
      break;
    }
    st.completed.push_back(
        {st.open_begin, end, trace.AveragePrice(st.open_begin, end)});
    st.open = false;
    st.processed = end;
  }

  // Assemble the window's samples in chronological order. Completed
  // intervals fully inside [from, now] reuse the cached average; only the
  // (at most one) interval clipped by the window edge recomputes it, with
  // the same AveragePrice arguments the rescan would use.
  std::vector<LifetimeSample> samples;
  samples.reserve(st.completed.size() + 1);
  for (const auto& rec : st.completed) {
    const SimTime b = std::max(rec.begin, from);
    const SimTime e = std::min(rec.end, now);
    if (e <= b) {
      continue;
    }
    if (b == rec.begin && e == rec.end) {
      samples.push_back({e - b, rec.avg_price});
    } else {
      samples.push_back({e - b, trace.AveragePrice(b, e)});
    }
  }
  if (st.open && st.open_begin < now) {
    const SimTime b = std::max(st.open_begin, from);
    if (now > b) {
      samples.push_back({now - b, trace.AveragePrice(b, now)});
    }
  }
  return PredictFromSamples(samples, config_.lifetime_percentile);
}

SpotPrediction CdfPredictor::Predict(const PriceTrace& trace, SimTime now,
                                     double bid) const {
  SpotPrediction pred;
  const SimTime from = std::max(trace.start(), now - config_.history_window);
  if (now <= from) {
    return pred;
  }
  // Time-weighted CDF over the window: fraction of time at or below the bid,
  // and the mean price conditioned on being at or below.
  double below_seconds = 0.0;
  double below_price_weighted = 0.0;
  SimTime cursor = from;
  while (cursor < now) {
    const SimTime begin = trace.NextTimeAtOrBelow(cursor, bid);
    if (begin >= now) {
      break;
    }
    const SimTime end = std::min(trace.NextTimeAbove(begin, bid), now);
    if (end <= begin) {
      cursor = begin + Duration::Micros(1);
      continue;
    }
    below_seconds += (end - begin).seconds();
    below_price_weighted += trace.AveragePrice(begin, end) * (end - begin).seconds();
    cursor = end;
  }
  const double window_seconds = (now - from).seconds();
  if (below_seconds <= 0.0) {
    return pred;
  }
  const double prob_below = below_seconds / window_seconds;
  pred.lifetime = Duration::FromSecondsF(window_seconds * prob_below);
  pred.avg_price = below_price_weighted / below_seconds;
  pred.usable = true;
  return pred;
}

PredictorAssessment AssessPredictor(const SpotFeaturePredictor& predictor,
                                    const PriceTrace& trace, double bid,
                                    SimTime eval_start, SimTime eval_end,
                                    Duration step) {
  PredictorAssessment result;
  int overestimates = 0;
  double deviation_sum = 0.0;
  for (SimTime t = eval_start; t < eval_end; t += step) {
    if (trace.PriceAt(t) > bid) {
      continue;  // a bid placed now fails outright; no lifetime to assess
    }
    const SpotPrediction pred = predictor.Predict(trace, t, bid);
    if (!pred.usable) {
      continue;
    }
    // L(b) is the paper's *contiguous* below-bid period containing t; samples
    // censored by the end of the evaluation window are skipped (their true
    // length is unknown).
    const PriceTrace::Interval interval = trace.BelowInterval(t, bid);
    const bool censored = interval.end >= eval_end;
    if (censored && pred.lifetime > interval.length()) {
      continue;  // truth unknown: the interval outlives the evaluation window
    }
    if (pred.lifetime > interval.length()) {
      ++overestimates;
    }
    const double actual_avg =
        trace.AveragePrice(interval.begin, interval.end);
    if (actual_avg > 0.0) {
      deviation_sum += std::fabs(actual_avg - pred.avg_price) / actual_avg;
    }
    ++result.evaluations;
  }
  if (result.evaluations > 0) {
    result.overestimation_rate =
        static_cast<double>(overestimates) / result.evaluations;
    result.price_rel_deviation = deviation_sum / result.evaluations;
  }
  return result;
}

}  // namespace spotcache
