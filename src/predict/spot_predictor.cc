#include "src/predict/spot_predictor.h"

#include <algorithm>
#include <cmath>

#include "src/util/stats.h"

namespace spotcache {

std::vector<LifetimeSample> ExtractLifetimes(const PriceTrace& trace, SimTime from,
                                             SimTime to, double bid) {
  std::vector<LifetimeSample> out;
  if (to <= from) {
    return out;
  }
  SimTime cursor = from;
  while (cursor < to) {
    // Find the next below-bid stretch.
    const SimTime begin = trace.NextTimeAtOrBelow(cursor, bid);
    if (begin >= to) {
      break;
    }
    SimTime end = trace.NextTimeAbove(begin, bid);
    end = std::min(end, to);
    if (end > begin) {
      out.push_back({end - begin, trace.AveragePrice(begin, end)});
      cursor = end;
    } else {
      // Zero-length artifact (shouldn't happen with a well-formed trace);
      // step past it to guarantee progress.
      cursor = begin + Duration::Micros(1);
    }
  }
  return out;
}

SpotPrediction LifetimePredictor::Predict(const PriceTrace& trace, SimTime now,
                                          double bid) const {
  SpotPrediction pred;
  const SimTime from = std::max(trace.start(), now - config_.history_window);
  const auto samples = ExtractLifetimes(trace, from, now, bid);
  if (samples.empty()) {
    return pred;  // bid never succeeded in the window: unusable
  }
  std::vector<double> lengths;
  double price_sum = 0.0;
  lengths.reserve(samples.size());
  for (const auto& s : samples) {
    lengths.push_back(s.length.seconds());
    price_sum += s.avg_price;
  }
  pred.lifetime = Duration::FromSecondsF(
      Percentile(std::move(lengths), config_.lifetime_percentile));
  pred.avg_price = price_sum / static_cast<double>(samples.size());
  pred.usable = true;
  return pred;
}

SpotPrediction CdfPredictor::Predict(const PriceTrace& trace, SimTime now,
                                     double bid) const {
  SpotPrediction pred;
  const SimTime from = std::max(trace.start(), now - config_.history_window);
  if (now <= from) {
    return pred;
  }
  // Time-weighted CDF over the window: fraction of time at or below the bid,
  // and the mean price conditioned on being at or below.
  double below_seconds = 0.0;
  double below_price_weighted = 0.0;
  SimTime cursor = from;
  while (cursor < now) {
    const SimTime begin = trace.NextTimeAtOrBelow(cursor, bid);
    if (begin >= now) {
      break;
    }
    const SimTime end = std::min(trace.NextTimeAbove(begin, bid), now);
    if (end <= begin) {
      cursor = begin + Duration::Micros(1);
      continue;
    }
    below_seconds += (end - begin).seconds();
    below_price_weighted += trace.AveragePrice(begin, end) * (end - begin).seconds();
    cursor = end;
  }
  const double window_seconds = (now - from).seconds();
  if (below_seconds <= 0.0) {
    return pred;
  }
  const double prob_below = below_seconds / window_seconds;
  pred.lifetime = Duration::FromSecondsF(window_seconds * prob_below);
  pred.avg_price = below_price_weighted / below_seconds;
  pred.usable = true;
  return pred;
}

PredictorAssessment AssessPredictor(const SpotFeaturePredictor& predictor,
                                    const PriceTrace& trace, double bid,
                                    SimTime eval_start, SimTime eval_end,
                                    Duration step) {
  PredictorAssessment result;
  int overestimates = 0;
  double deviation_sum = 0.0;
  for (SimTime t = eval_start; t < eval_end; t += step) {
    if (trace.PriceAt(t) > bid) {
      continue;  // a bid placed now fails outright; no lifetime to assess
    }
    const SpotPrediction pred = predictor.Predict(trace, t, bid);
    if (!pred.usable) {
      continue;
    }
    // L(b) is the paper's *contiguous* below-bid period containing t; samples
    // censored by the end of the evaluation window are skipped (their true
    // length is unknown).
    const PriceTrace::Interval interval = trace.BelowInterval(t, bid);
    const bool censored = interval.end >= eval_end;
    if (censored && pred.lifetime > interval.length()) {
      continue;  // truth unknown: the interval outlives the evaluation window
    }
    if (pred.lifetime > interval.length()) {
      ++overestimates;
    }
    const double actual_avg =
        trace.AveragePrice(interval.begin, interval.end);
    if (actual_avg > 0.0) {
      deviation_sum += std::fabs(actual_avg - pred.avg_price) / actual_avg;
    }
    ++result.evaluations;
  }
  if (result.evaluations > 0) {
    result.overestimation_rate =
        static_cast<double>(overestimates) / result.evaluations;
    result.price_rel_deviation = deviation_sum / result.evaluations;
  }
  return result;
}

}  // namespace spotcache
