#include "src/predict/workload_predictor.h"

#include <algorithm>

namespace spotcache {

void Ar2Predictor::Observe(double value) {
  history_.push_back(value);
  while (history_.size() > config_.window) {
    history_.pop_front();
  }
  if (history_.size() >= config_.min_fit) {
    Refit();
  }
}

void Ar2Predictor::Refit() {
  // Rows: (x[t-1], x[t-2]) -> x[t].
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (size_t t = 2; t < history_.size(); ++t) {
    rows.push_back({history_[t - 1], history_[t - 2]});
    targets.push_back(history_[t]);
  }
  const RegressionResult r = FitLeastSquares(rows, targets, /*with_intercept=*/false);
  if (r.ok && r.coefficients.size() == 2) {
    gamma1_ = r.coefficients[0];
    gamma2_ = r.coefficients[1];
    fitted_ = true;
  }
}

double Ar2Predictor::Predict() const {
  if (history_.empty()) {
    return 0.0;
  }
  double pred;
  if (!fitted_ || history_.size() < 2) {
    pred = history_.back();
  } else {
    pred = gamma1_ * history_[history_.size() - 1] +
           gamma2_ * history_[history_.size() - 2];
  }
  return std::max(0.0, pred * config_.headroom);
}

}  // namespace spotcache
