// Workload prediction for the controller's inputs lambda-hat and M-hat
// (paper §4.1 suggests e.g. an AR(2) model; we fit its coefficients online by
// least squares over a sliding history).

#pragma once

#include <cstddef>
#include <deque>

#include "src/util/linear_regression.h"

namespace spotcache {

/// Online AR(2) one-step-ahead predictor with least-squares coefficient
/// refitting over a sliding window. Falls back to persistence (last value)
/// until enough history accumulates, and clamps predictions to be
/// non-negative.
class Ar2Predictor {
 public:
  struct Config {
    /// Observations kept for fitting.
    size_t window = 48;
    /// Minimum observations before switching from persistence to AR(2).
    size_t min_fit = 8;
    /// Safety margin multiplied into predictions (the controller prefers
    /// slight over-provisioning to under-provisioning).
    double headroom = 1.0;
  };

  Ar2Predictor() : Ar2Predictor(Config{}) {}
  explicit Ar2Predictor(const Config& config) : config_(config) {}

  void Observe(double value);

  /// Predicts the next value.
  double Predict() const;

  size_t observations() const { return history_.size(); }
  /// Last fitted (gamma1, gamma2); (0,0) before the first fit.
  double gamma1() const { return gamma1_; }
  double gamma2() const { return gamma2_; }

 private:
  void Refit();

  Config config_;
  std::deque<double> history_;
  double gamma1_ = 0.0;
  double gamma2_ = 0.0;
  bool fitted_ = false;
};

}  // namespace spotcache
