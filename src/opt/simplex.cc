#include "src/opt/simplex.h"

#include <cmath>
#include <cstdint>
#include <limits>

namespace spotcache {

namespace {
constexpr double kEps = 1e-9;
}

LinearProgram::LinearProgram(size_t num_vars)
    : n_(num_vars), objective_(num_vars, 0.0) {}

void LinearProgram::SetObjective(size_t j, double c) { objective_.at(j) = c; }

void LinearProgram::AddEquality(const std::vector<std::pair<size_t, double>>& terms,
                                double rhs) {
  Row row{std::vector<double>(n_, 0.0), rhs, 0};
  for (const auto& [j, v] : terms) {
    row.coeffs.at(j) += v;
  }
  rows_.push_back(std::move(row));
}

void LinearProgram::AddGreaterEqual(
    const std::vector<std::pair<size_t, double>>& terms, double rhs) {
  Row row{std::vector<double>(n_, 0.0), rhs, 1};
  for (const auto& [j, v] : terms) {
    row.coeffs.at(j) += v;
  }
  rows_.push_back(std::move(row));
}

void LinearProgram::AddLessEqual(const std::vector<std::pair<size_t, double>>& terms,
                                 double rhs) {
  Row row{std::vector<double>(n_, 0.0), rhs, -1};
  for (const auto& [j, v] : terms) {
    row.coeffs.at(j) += v;
  }
  rows_.push_back(std::move(row));
}

namespace {

/// Dense tableau simplex state shared by both phases.
struct Tableau {
  size_t m;      // constraint rows
  size_t ncols;  // structural + slack + artificial columns
  std::vector<std::vector<double>> a;  // m x ncols
  std::vector<double> rhs;             // m
  std::vector<size_t> basis;           // m: basic column per row
  std::vector<double> cost;            // ncols reduced costs
  double objective = 0.0;              // current objective value

  void Pivot(size_t row, size_t col) {
    const double p = a[row][col];
    for (size_t j = 0; j < ncols; ++j) {
      a[row][j] /= p;
    }
    rhs[row] /= p;
    for (size_t i = 0; i < m; ++i) {
      if (i == row || std::fabs(a[i][col]) < kEps) {
        continue;
      }
      const double f = a[i][col];
      for (size_t j = 0; j < ncols; ++j) {
        a[i][j] -= f * a[row][j];
      }
      rhs[i] -= f * rhs[row];
    }
    const double cf = cost[col];
    if (std::fabs(cf) > 0.0) {
      for (size_t j = 0; j < ncols; ++j) {
        cost[j] -= cf * a[row][j];
      }
      objective -= cf * rhs[row];
    }
    basis[row] = col;
  }

  /// Prices the objective `c` against the current basis.
  void SetCost(const std::vector<double>& c) {
    cost = c;
    objective = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double cb = c[basis[i]];
      if (std::fabs(cb) < kEps) {
        continue;
      }
      for (size_t j = 0; j < ncols; ++j) {
        cost[j] -= cb * a[i][j];
      }
      objective -= cb * rhs[i];
    }
  }

  /// Runs simplex to optimality over columns where allowed[j]. Returns false
  /// if unbounded.
  bool Optimize(const std::vector<bool>& allowed) {
    // Dantzig's rule (most negative reduced cost) for speed; after enough
    // iterations switch to Bland's rule, which cannot cycle, so termination
    // is guaranteed either way.
    const uint64_t bland_after = 50 * (m + ncols);
    uint64_t iterations = 0;
    for (;;) {
      const bool bland = ++iterations > bland_after;
      size_t enter = ncols;
      double best = -kEps;
      for (size_t j = 0; j < ncols; ++j) {
        if (!allowed[j] || cost[j] >= -kEps) {
          continue;
        }
        if (bland) {
          enter = j;
          break;
        }
        if (cost[j] < best) {
          best = cost[j];
          enter = j;
        }
      }
      if (enter == ncols) {
        return true;  // optimal
      }
      size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < m; ++i) {
        if (a[i][enter] > kEps) {
          const double ratio = rhs[i] / a[i][enter];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m || basis[i] < basis[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m) {
        return false;  // unbounded
      }
      Pivot(leave, enter);
    }
  }
};

}  // namespace

LinearProgram::Solution LinearProgram::Solve() const { return Solve(nullptr); }

LinearProgram::Solution LinearProgram::Solve(SimplexBasis* basis) const {
  Solution sol;
  const size_t m = rows_.size();

  // Normalize rows to rhs >= 0 and count auxiliary columns.
  std::vector<Row> rows = rows_;
  size_t n_slack = 0;
  size_t n_art = 0;
  std::vector<int8_t> kinds;
  kinds.reserve(m);
  for (auto& r : rows) {
    if (r.rhs < 0.0) {
      for (double& v : r.coeffs) {
        v = -v;
      }
      r.rhs = -r.rhs;
      r.kind = -r.kind;
    }
    if (r.kind != 0) {
      ++n_slack;
    }
    if (r.kind >= 0) {
      ++n_art;  // >= needs artificial (after surplus); == needs artificial
    }
    kinds.push_back(static_cast<int8_t>(r.kind));
  }

  const size_t ncols = n_ + n_slack + n_art;
  std::vector<bool> is_artificial(ncols, false);
  const auto build = [&](Tableau& t) {
    t.m = m;
    t.ncols = ncols;
    t.a.assign(m, std::vector<double>(ncols, 0.0));
    t.rhs.assign(m, 0.0);
    t.basis.assign(m, 0);
    size_t slack_col = n_;
    size_t art_col = n_ + n_slack;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n_; ++j) {
        t.a[i][j] = rows[i].coeffs[j];
      }
      t.rhs[i] = rows[i].rhs;
      if (rows[i].kind == -1) {  // <= : slack enters the basis directly
        t.a[i][slack_col] = 1.0;
        t.basis[i] = slack_col++;
      } else if (rows[i].kind == 1) {  // >= : surplus + artificial
        t.a[i][slack_col] = -1.0;
        ++slack_col;
        t.a[i][art_col] = 1.0;
        is_artificial[art_col] = true;
        t.basis[i] = art_col++;
      } else {  // == : artificial
        t.a[i][art_col] = 1.0;
        is_artificial[art_col] = true;
        t.basis[i] = art_col++;
      }
    }
  };

  Tableau t;

  // Warm start: if the hinted basis matches this program's structure, pivot
  // its columns back into the cold tableau. When the resulting vertex is
  // still primal-feasible for the new rhs, phase 1 is skipped outright; any
  // mismatch, singularity, or infeasibility falls back to the cold path.
  bool warm = false;
  if (basis != nullptr && !basis->empty() && basis->num_vars == n_ &&
      basis->num_rows == m && basis->basic.size() == m &&
      basis->row_kinds == kinds) {
    bool importable = true;
    for (const size_t c : basis->basic) {
      if (c >= n_ + n_slack) {
        importable = false;  // an artificial stayed basic last time
        break;
      }
    }
    if (importable) {
      build(t);
      // Pivots with a zero cost vector leave pricing for SetCost below.
      t.cost.assign(ncols, 0.0);
      t.objective = 0.0;
      warm = true;
      std::vector<bool> claimed(m, false);
      for (const size_t c : basis->basic) {
        // Partial pivoting: claim the free row with the largest magnitude.
        size_t pick = m;
        double best = 1e-7;
        for (size_t i = 0; i < m; ++i) {
          if (!claimed[i] && std::fabs(t.a[i][c]) > best) {
            best = std::fabs(t.a[i][c]);
            pick = i;
          }
        }
        if (pick == m) {
          warm = false;  // hinted basis is singular for the new coefficients
          break;
        }
        t.Pivot(pick, c);
        claimed[pick] = true;
      }
      for (size_t i = 0; warm && i < m; ++i) {
        if (t.rhs[i] < -1e-7) {
          warm = false;  // vertex left the feasible region: re-run phase 1
        } else if (t.rhs[i] < 0.0) {
          t.rhs[i] = 0.0;
        }
      }
    }
  }

  if (!warm) {
    build(t);

    // Phase 1: minimize the sum of artificials.
    if (n_art > 0) {
      std::vector<double> phase1(ncols, 0.0);
      for (size_t j = 0; j < ncols; ++j) {
        if (is_artificial[j]) {
          phase1[j] = 1.0;
        }
      }
      std::vector<bool> allow_all(ncols, true);
      t.SetCost(phase1);
      if (!t.Optimize(allow_all)) {
        return sol;  // phase 1 cannot be unbounded; defensive
      }
      // The tableau accumulates the *negated* objective (SetCost/Pivot
      // subtract c_B * rhs), so the phase-1 optimum is -t.objective.
      if (-t.objective > 1e-6) {
        return sol;  // infeasible
      }
      // Drive any remaining basic artificials out (degenerate rows).
      for (size_t i = 0; i < m; ++i) {
        if (!is_artificial[t.basis[i]]) {
          continue;
        }
        size_t pivot_col = ncols;
        for (size_t j = 0; j < n_ + n_slack; ++j) {
          if (std::fabs(t.a[i][j]) > kEps) {
            pivot_col = j;
            break;
          }
        }
        if (pivot_col < ncols) {
          t.Pivot(i, pivot_col);
        }
        // Else the row is all-zero (redundant constraint): the artificial
        // stays basic at value 0, which is harmless as long as it cannot
        // re-enter.
      }
    }
  }

  // Phase 2: real objective; artificial columns barred from entering.
  std::vector<double> phase2(ncols, 0.0);
  for (size_t j = 0; j < n_; ++j) {
    phase2[j] = objective_[j];
  }
  std::vector<bool> allowed(ncols, true);
  for (size_t j = 0; j < ncols; ++j) {
    if (is_artificial[j]) {
      allowed[j] = false;
    }
  }
  t.SetCost(phase2);
  if (!t.Optimize(allowed)) {
    sol.bounded = false;
    return sol;
  }

  sol.feasible = true;
  sol.x.assign(n_, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (t.basis[i] < n_) {
      sol.x[t.basis[i]] = t.rhs[i];
    }
  }
  sol.objective = -t.objective;
  // The tableau tracks objective as negated accumulation; recompute directly
  // for clarity and to avoid sign conventions leaking out.
  sol.objective = 0.0;
  for (size_t j = 0; j < n_; ++j) {
    sol.objective += objective_[j] * sol.x[j];
  }

  if (basis != nullptr) {
    basis->basic = t.basis;
    basis->num_vars = n_;
    basis->num_rows = m;
    basis->row_kinds = std::move(kinds);
  }
  return sol;
}

}  // namespace spotcache
