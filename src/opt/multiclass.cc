#include "src/opt/multiclass.h"

#include <algorithm>
#include <cmath>

#include "src/opt/simplex.h"

namespace spotcache {

std::vector<PopularityClass> MakePopularityClasses(
    const ZipfPopularity& popularity, const std::vector<double>& coverage_cuts,
    double alpha, double hot_penalty, double cold_penalty,
    double min_band_ws_fraction) {
  std::vector<PopularityClass> classes;
  const double alpha_access = popularity.AccessFraction(alpha);

  double prev_ws = 0.0;
  double prev_access = 0.0;
  for (double cut : coverage_cuts) {
    const double ws = std::min(
        alpha, std::max(popularity.KeyFractionForCoverage(cut),
                        prev_ws + min_band_ws_fraction));
    const double access = popularity.AccessFraction(ws);
    PopularityClass band;
    band.ws_fraction = ws - prev_ws;
    band.access_fraction = std::max(0.0, access - prev_access);
    classes.push_back(band);
    prev_ws = ws;
    prev_access = access;
    if (ws >= alpha) {
      break;
    }
  }
  // The residual cold band up to alpha.
  if (prev_ws < alpha) {
    PopularityClass band;
    band.ws_fraction = alpha - prev_ws;
    band.access_fraction = std::max(0.0, alpha_access - prev_access);
    classes.push_back(band);
  }

  // Penalties: scale from hot to cold by each band's traffic density relative
  // to the hottest band's (denser bands hurt more when lost).
  double max_density = 0.0;
  for (const auto& band : classes) {
    if (band.ws_fraction > 0.0) {
      max_density = std::max(max_density, band.access_fraction / band.ws_fraction);
    }
  }
  for (auto& band : classes) {
    const double density =
        band.ws_fraction > 0.0 ? band.access_fraction / band.ws_fraction : 0.0;
    const double rel = max_density > 0.0 ? density / max_density : 0.0;
    band.loss_penalty = cold_penalty + (hot_penalty - cold_penalty) * rel;
  }
  return classes;
}

int MultiClassPlan::TotalInstances() const {
  int n = 0;
  for (const auto& item : items) {
    n += item.count;
  }
  return n;
}

double MultiClassPlan::OnDemandDataFraction(
    const std::vector<ProcurementOption>& options) const {
  double od = 0.0;
  double total = 0.0;
  for (const auto& item : items) {
    double data = 0.0;
    for (double f : item.class_fractions) {
      data += f;
    }
    total += data;
    if (options[item.option].is_on_demand()) {
      od += data;
    }
  }
  return total > 0.0 ? od / total : 0.0;
}

AllocationPlan MultiClassPlan::Collapse(size_t hot_classes) const {
  AllocationPlan plan;
  plan.feasible = feasible;
  plan.lp_objective = lp_objective;
  for (const auto& item : items) {
    AllocationItem out;
    out.option = item.option;
    out.count = item.count;
    for (size_t c = 0; c < item.class_fractions.size(); ++c) {
      (c < hot_classes ? out.x : out.y) += item.class_fractions[c];
    }
    plan.items.push_back(out);
  }
  return plan;
}

MultiClassOptimizer::MultiClassOptimizer(std::vector<ProcurementOption> options,
                                         LatencyModel latency_model,
                                         Config config)
    : options_(std::move(options)),
      latency_model_(latency_model),
      config_(config) {}

MultiClassPlan MultiClassOptimizer::Solve(const MultiClassInputs& inputs) const {
  MultiClassPlan plan;
  const size_t n_opts = options_.size();
  const size_t k_classes = inputs.classes.size();
  if (inputs.spot_predictions.size() != n_opts ||
      inputs.existing.size() != n_opts || inputs.available.size() != n_opts ||
      k_classes == 0) {
    return plan;
  }
  const double m_hat = inputs.working_set_gb;
  double total_ws = 0.0;
  double total_access = 0.0;
  for (const auto& band : inputs.classes) {
    total_ws += band.ws_fraction;
    total_access += band.access_fraction;
  }
  if (m_hat <= 0.0 || total_ws <= 0.0) {
    plan.feasible = true;
    return plan;
  }

  // Traffic density per class, ops/s per GB.
  std::vector<double> density(k_classes, 0.0);
  for (size_t c = 0; c < k_classes; ++c) {
    const double gb = inputs.classes[c].ws_fraction * m_hat;
    if (gb > 0.0) {
      density[c] = inputs.lambda_hat * inputs.classes[c].access_fraction / gb;
    }
  }

  // Usable options with coefficients.
  struct Usable {
    size_t opt;
    double price;
    double ram_gb;
    double max_rate;
    double penalty_scale;  // slot_hours / predicted-lifetime-hours (0 for OD)
    bool on_demand;
  };
  std::vector<Usable> usable;
  const double slot_hours = config_.slot.hours();
  const Duration l_hit = latency_model_.HitBoundFor(
      config_.mean_latency_target, std::min(1.0, total_access));
  for (size_t o = 0; o < n_opts; ++o) {
    if (!inputs.available[o]) {
      continue;
    }
    Usable u;
    u.opt = o;
    u.on_demand = options_[o].is_on_demand();
    u.ram_gb = options_[o].type->capacity.ram_gb * config_.ram_usable_fraction;
    u.max_rate = latency_model_.MaxRate(options_[o].type->capacity, l_hit);
    if (u.max_rate <= 0.0 || u.ram_gb <= 0.0) {
      continue;
    }
    if (u.on_demand) {
      u.price = options_[o].type->od_price_per_hour;
      u.penalty_scale = 0.0;
    } else {
      const SpotPrediction& pred = inputs.spot_predictions[o];
      if (!pred.usable ||
          pred.lifetime.hours() < config_.min_spot_lifetime_hours) {
        continue;
      }
      u.price = pred.avg_price;
      u.penalty_scale = slot_hours / std::max(pred.lifetime.hours(), 1e-3);
    }
    usable.push_back(u);
  }
  if (usable.empty()) {
    return plan;
  }

  // Variables per usable option: k class-GB vars + n + dealloc slack.
  const size_t stride = k_classes + 2;
  LinearProgram lp(usable.size() * stride);
  auto gvar = [stride](size_t i, size_t c) { return i * stride + c; };
  auto nvar = [stride, k_classes](size_t i) { return i * stride + k_classes; };
  auto dvar = [stride, k_classes](size_t i) {
    return i * stride + k_classes + 1;
  };

  std::vector<std::vector<std::pair<size_t, double>>> class_sums(k_classes);
  std::vector<std::pair<size_t, double>> od_data;
  for (size_t i = 0; i < usable.size(); ++i) {
    const Usable& u = usable[i];
    for (size_t c = 0; c < k_classes; ++c) {
      lp.SetObjective(gvar(i, c),
                      inputs.classes[c].loss_penalty * u.penalty_scale);
      class_sums[c].push_back({gvar(i, c), 1.0});
      if (u.on_demand) {
        od_data.push_back({gvar(i, c), 1.0});
      }
    }
    lp.SetObjective(nvar(i), u.price * slot_hours);
    lp.SetObjective(dvar(i), config_.eta);

    // Capacity.
    std::vector<std::pair<size_t, double>> cap{{nvar(i), u.ram_gb}};
    for (size_t c = 0; c < k_classes; ++c) {
      cap.push_back({gvar(i, c), -1.0});
    }
    lp.AddGreaterEqual(cap, 0.0);
    // Throughput.
    std::vector<std::pair<size_t, double>> thr{{nvar(i), u.max_rate}};
    for (size_t c = 0; c < k_classes; ++c) {
      thr.push_back({gvar(i, c), -density[c]});
    }
    lp.AddGreaterEqual(thr, 0.0);
    // Deallocation damping.
    lp.AddGreaterEqual({{nvar(i), 1.0}, {dvar(i), 1.0}},
                       static_cast<double>(inputs.existing[u.opt]));
  }
  for (size_t c = 0; c < k_classes; ++c) {
    lp.AddEquality(class_sums[c], inputs.classes[c].ws_fraction * m_hat);
  }
  if (config_.zeta > 0.0) {
    lp.AddGreaterEqual(od_data, config_.zeta * total_ws * m_hat);
  }

  const LinearProgram::Solution sol = lp.Solve();
  if (!sol.feasible) {
    return plan;
  }
  plan.feasible = true;
  plan.lp_objective = sol.objective;
  for (size_t i = 0; i < usable.size(); ++i) {
    MultiClassItem item;
    item.option = usable[i].opt;
    item.count = static_cast<int>(std::ceil(sol.x[nvar(i)] - 1e-6));
    item.class_fractions.resize(k_classes, 0.0);
    double data = 0.0;
    for (size_t c = 0; c < k_classes; ++c) {
      item.class_fractions[c] = sol.x[gvar(i, c)] / m_hat;
      data += item.class_fractions[c];
    }
    if (item.count > 0 || data > 1e-12) {
      if (item.count == 0) {
        item.count = 1;
      }
      plan.items.push_back(std::move(item));
    }
  }
  return plan;
}

}  // namespace spotcache
