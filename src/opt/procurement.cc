#include "src/opt/procurement.h"

#include <cstdio>

namespace spotcache {

std::vector<ProcurementOption> BuildOptions(
    const InstanceCatalog& catalog, const std::vector<SpotMarket>& markets,
    const std::vector<double>& bid_multipliers) {
  std::vector<ProcurementOption> options;
  for (const auto* type : catalog.OnDemandCandidates()) {
    ProcurementOption o;
    o.kind = ProcurementOption::Kind::kOnDemand;
    o.type = type;
    o.label = "od:" + type->name;
    options.push_back(std::move(o));
  }
  for (const auto& market : markets) {
    for (double mult : bid_multipliers) {
      ProcurementOption o;
      o.kind = ProcurementOption::Kind::kSpot;
      o.type = market.type;
      o.market = &market;
      o.bid = market.od_price() * mult;
      char label[96];
      std::snprintf(label, sizeof(label), "%s@%.2gd", market.name.c_str(), mult);
      o.label = label;
      options.push_back(std::move(o));
    }
  }
  return options;
}

int AllocationPlan::TotalInstances() const {
  int n = 0;
  for (const auto& item : items) {
    n += item.count;
  }
  return n;
}

int AllocationPlan::CountFor(size_t option) const {
  const AllocationItem* item = ItemFor(option);
  return item == nullptr ? 0 : item->count;
}

const AllocationItem* AllocationPlan::ItemFor(size_t option) const {
  for (const auto& item : items) {
    if (item.option == option) {
      return &item;
    }
  }
  return nullptr;
}

double AllocationPlan::OnDemandDataFraction(
    const std::vector<ProcurementOption>& options) const {
  double placed_total = 0.0;
  double placed_od = 0.0;
  for (const auto& item : items) {
    const double data = item.x + item.y;
    placed_total += data;
    if (options[item.option].is_on_demand()) {
      placed_od += data;
    }
  }
  return placed_total > 0.0 ? placed_od / placed_total : 0.0;
}

}  // namespace spotcache
