// Reserved-instance analysis.
//
// Paper §2.3 dismisses reserved instances (26-37% cheaper than on-demand) for
// unpredictable workloads because they demand a 1-3 year commitment — "a
// high-risk proposition". This module quantifies that argument: given a
// demand series for one instance type, it finds the cost-optimal reservation
// count, and then exposes the downside when demand does not cooperate
// (a post-commitment decline leaves the reservation stranded).

#pragma once

#include <vector>

#include "src/cloud/instance_types.h"
#include "src/workload/trace.h"

namespace spotcache {

struct ReservedAnalysis {
  /// Cost-optimal number of reserved instances for the observed demand.
  int best_count = 0;
  /// Total cost over the horizon with the optimal reservation (reserved
  /// hours + on-demand overflow).
  double reserved_cost = 0.0;
  /// Total cost with no reservation (pure on-demand autoscaling).
  double od_only_cost = 0.0;
  /// 1 - reserved/od_only: the upside when demand is as observed.
  double savings_fraction = 0.0;
  /// Cost of keeping the same reservation when demand scales by
  /// `decline_factor` (commitments cannot be resized).
  double declined_reserved_cost = 0.0;
  /// Pure on-demand cost under the declined demand.
  double declined_od_cost = 0.0;
  /// declined_reserved/declined_od - 1: the regret when demand falls.
  double regret_fraction = 0.0;
};

/// `hourly_demand` is the number of instances needed each hour. Reserved
/// instances bill every hour at (1 - discount) * od_price regardless of use;
/// demand above the reservation is served on-demand.
ReservedAnalysis AnalyzeReservation(const std::vector<double>& hourly_demand,
                                    double od_price_per_hour, double discount,
                                    double decline_factor = 0.4);

/// Derives an hourly instance-demand series from a workload trace for one
/// type: instances = max(RAM need, throughput need) per slot.
std::vector<double> InstanceDemandSeries(const WorkloadTrace& trace,
                                         const InstanceTypeSpec& type,
                                         double ops_capacity_per_instance,
                                         double ram_usable_fraction = 0.85);

}  // namespace spotcache
