// The per-slot procurement optimizer (paper §4.1).
//
// Minimizes   sum_o [ price_o * N_o * slot
//                     + eta * max(0, existing_o - N_o)
//                     + slot * (beta1 * x_o + beta2 * y_o) * M / L_o ]
// subject to  sum x_o = H,  sum y_o = alpha - H          (placement, eq. 1)
//             N_o * ram_o   >= (x_o + y_o) * M            (capacity)
//             N_o * lam_o   >= traffic share of (x_o, y_o) (throughput, eq. 2)
//             sum_{o in OD} (x_o + y_o) >= zeta * alpha    (availability)
//
// The integrality of N is relaxed to an LP (see simplex.h) and the result is
// rounded up — the problem is small enough that ceil-rounding loses only
// fractional-instance slack. The Mixing knob reproduces the OD+Spot_Sep
// baseline: hot pinned to on-demand, cold pinned to spot (when any is
// usable), with the availability floor disabled since separation itself is
// the availability story.

#pragma once

#include <vector>

#include "src/obs/obs.h"
#include "src/opt/procurement.h"
#include "src/opt/simplex.h"
#include "src/predict/spot_predictor.h"
#include "src/sim/latency_model.h"
#include "src/util/time.h"

namespace spotcache {

enum class MixingPolicy {
  kMix,       // the paper's hot-cold mixing
  kSeparate,  // hot on OD only, cold on spot only (OD+Spot_Sep baseline)
};

struct OptimizerConfig {
  /// Fraction of the working set that must be in memory (1.0 = full store).
  double alpha = 1.0;
  /// Access coverage defining "hot" (footnote 3: 90%).
  double hot_coverage = 0.90;
  /// Minimum working-set fraction on on-demand instances (availability).
  double zeta = 0.10;
  /// Bid-failure penalty coefficients, $ per GB-hour over predicted lifetime.
  double beta1 = 0.5;   // hot data
  double beta2 = 0.02;  // cold data
  /// Deallocation damping, $ per instance removed. Must stay below typical
  /// spot hourly prices or the myopic slot problem never scales in (keeping
  /// always looks cheaper than one deallocation hit).
  double eta = 0.01;
  Duration slot = Duration::Hours(1);
  Duration mean_latency_target = Duration::Micros(800);
  /// Spot options predicted to live less than this are excluded outright.
  double min_spot_lifetime_hours = 1.0;
  MixingPolicy mixing = MixingPolicy::kMix;
  /// Fraction of instance RAM usable for cache data (memcached overhead).
  double ram_usable_fraction = 0.85;
  /// Carry the simplex basis from one slot's LP to the next: adjacent slots
  /// differ only in coefficients, so the previous optimum usually remains
  /// feasible and phase 1 is skipped (cold fallback otherwise; ~3x faster
  /// solves, see BENCH_perf.json). Off by default: at degenerate optima the
  /// warm path can land on a different equally-optimal vertex, which makes a
  /// slot's plan depend on solver history instead of being a pure function of
  /// its inputs — the objective is identical but figure-level outputs would
  /// no longer be bit-reproducible across replans. Enable when raw replan
  /// throughput matters more than trace-for-trace stability.
  bool warm_start = false;
};

/// Per-slot inputs (predictions + current state), parallel to the option set.
struct SlotInputs {
  double lambda_hat = 0.0;       // predicted arrivals, ops/s
  double working_set_gb = 0.0;   // predicted M-hat
  double hot_ws_fraction = 0.0;  // H: hot share of the working set
  double hot_access_fraction = 0.0;    // F(H)
  double alpha_access_fraction = 1.0;  // F(alpha)
  /// Spot feature predictions; entries for on-demand options are ignored.
  std::vector<SpotPrediction> spot_predictions;
  /// Instances currently held per option (N_t).
  std::vector<int> existing;
  /// Whether the option may be used this slot (e.g. current price <= bid).
  std::vector<bool> available;
};

class ProcurementOptimizer {
 public:
  ProcurementOptimizer(std::vector<ProcurementOption> options,
                       LatencyModel latency_model, OptimizerConfig config);

  const std::vector<ProcurementOption>& options() const { return options_; }
  const OptimizerConfig& config() const { return config_; }
  const LatencyModel& latency_model() const { return latency_model_; }

  /// Solves the slot problem. Infeasible inputs yield plan.feasible == false.
  AllocationPlan Solve(const SlotInputs& inputs) const;

  /// lambda^{sb}: max per-instance rate under the hit-latency bound implied
  /// by the mean target and F(alpha).
  double MaxRatePerInstance(size_t option, double alpha_access_fraction) const;

  /// Usable cache GB per instance of an option.
  double UsableRamGb(size_t option) const;

  /// Attaches observability: Solve records wall-clock `optimizer/solve_ms`
  /// and counts solves / infeasible solves. Null detaches.
  void AttachObs(Obs* obs);

 private:
  std::vector<ProcurementOption> options_;
  LatencyModel latency_model_;
  OptimizerConfig config_;
  /// Basis of the previous slot's LP, threaded into the next solve when
  /// warm_start is on. Solve stays logically const; an optimizer instance is
  /// owned by one control loop and must not be shared across threads.
  mutable SimplexBasis warm_basis_;
  Histogram* solve_hist_ = nullptr;
  Counter* solves_ = nullptr;
  Counter* infeasible_ = nullptr;
};

}  // namespace spotcache
