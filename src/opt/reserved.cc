#include "src/opt/reserved.h"

#include <algorithm>
#include <cmath>

namespace spotcache {

namespace {

double CostWithReservation(const std::vector<double>& demand, int reserved,
                           double od_price, double discount) {
  const double reserved_hourly = reserved * od_price * (1.0 - discount);
  double total = 0.0;
  for (double d : demand) {
    const double overflow = std::max(0.0, std::ceil(d) - reserved);
    total += reserved_hourly + overflow * od_price;
  }
  return total;
}

}  // namespace

ReservedAnalysis AnalyzeReservation(const std::vector<double>& hourly_demand,
                                    double od_price_per_hour, double discount,
                                    double decline_factor) {
  ReservedAnalysis out;
  if (hourly_demand.empty() || od_price_per_hour <= 0.0) {
    return out;
  }
  int peak = 0;
  for (double d : hourly_demand) {
    peak = std::max(peak, static_cast<int>(std::ceil(d)));
  }

  out.od_only_cost =
      CostWithReservation(hourly_demand, 0, od_price_per_hour, discount);
  out.reserved_cost = out.od_only_cost;
  for (int r = 1; r <= peak; ++r) {
    const double cost =
        CostWithReservation(hourly_demand, r, od_price_per_hour, discount);
    if (cost < out.reserved_cost) {
      out.reserved_cost = cost;
      out.best_count = r;
    }
  }
  out.savings_fraction =
      out.od_only_cost > 0.0 ? 1.0 - out.reserved_cost / out.od_only_cost : 0.0;

  // The risk case: demand declines after the commitment is locked in.
  std::vector<double> declined;
  declined.reserve(hourly_demand.size());
  for (double d : hourly_demand) {
    declined.push_back(d * decline_factor);
  }
  out.declined_reserved_cost = CostWithReservation(
      declined, out.best_count, od_price_per_hour, discount);
  out.declined_od_cost =
      CostWithReservation(declined, 0, od_price_per_hour, discount);
  out.regret_fraction =
      out.declined_od_cost > 0.0
          ? out.declined_reserved_cost / out.declined_od_cost - 1.0
          : 0.0;
  return out;
}

std::vector<double> InstanceDemandSeries(const WorkloadTrace& trace,
                                         const InstanceTypeSpec& type,
                                         double ops_capacity_per_instance,
                                         double ram_usable_fraction) {
  std::vector<double> demand;
  demand.reserve(trace.slots());
  const double usable_gb = type.capacity.ram_gb * ram_usable_fraction;
  for (size_t s = 0; s < trace.slots(); ++s) {
    const double by_ram = trace.WorkingSetGbAt(s) / usable_gb;
    const double by_rate =
        ops_capacity_per_instance > 0.0
            ? trace.RateAt(s) / ops_capacity_per_instance
            : 0.0;
    demand.push_back(std::max(by_ram, by_rate));
  }
  return demand;
}

}  // namespace spotcache
