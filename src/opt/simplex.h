// A small dense linear-programming solver (two-phase primal simplex).
//
// The per-slot procurement problem (paper §4.1) relaxes to an LP with a few
// dozen variables and constraints; this solver handles exactly that scale.
// Bland's rule guarantees termination; no effort is made to be fast on large
// problems.

#pragma once

#include <cstddef>
#include <vector>

namespace spotcache {

/// minimize c'x  subject to  A_eq x = b_eq,  A_ge x >= b_ge,  x >= 0.
class LinearProgram {
 public:
  explicit LinearProgram(size_t num_vars);

  size_t num_vars() const { return n_; }

  /// Sets the objective coefficient of variable `j`.
  void SetObjective(size_t j, double c);

  /// Adds `sum coeffs[j]*x[j] == rhs`. Sparse: pairs of (var, coeff).
  void AddEquality(const std::vector<std::pair<size_t, double>>& terms, double rhs);

  /// Adds `sum coeffs[j]*x[j] >= rhs`.
  void AddGreaterEqual(const std::vector<std::pair<size_t, double>>& terms,
                       double rhs);

  /// Adds `sum coeffs[j]*x[j] <= rhs`.
  void AddLessEqual(const std::vector<std::pair<size_t, double>>& terms,
                    double rhs);

  struct Solution {
    bool feasible = false;
    bool bounded = true;
    double objective = 0.0;
    std::vector<double> x;
  };

  /// Solves; x is empty when infeasible.
  Solution Solve() const;

 private:
  struct Row {
    std::vector<double> coeffs;
    double rhs;
    int kind;  // 0: ==, 1: >=, -1: <=
  };

  size_t n_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace spotcache
