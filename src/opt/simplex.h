// A small dense linear-programming solver (two-phase primal simplex).
//
// The per-slot procurement problem (paper §4.1) relaxes to an LP with a few
// dozen variables and constraints; this solver handles exactly that scale.
// Bland's rule guarantees termination; no effort is made to be fast on large
// problems.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spotcache {

/// An exported simplex basis, used to warm-start the next solve of a
/// structurally identical program (same variable count, same row count and
/// row kinds in the same order). The per-slot procurement LPs differ only in
/// their coefficients between adjacent slots, so the previous optimum is
/// usually still (near-)optimal and phase 1 can be skipped entirely.
struct SimplexBasis {
  std::vector<size_t> basic;  // basic column per row, from the last solve
  size_t num_vars = 0;        // structural variable count it was built for
  size_t num_rows = 0;
  std::vector<int8_t> row_kinds;  // normalized row kinds (0: ==, 1: >=, -1: <=)

  bool empty() const { return basic.empty(); }
};

/// minimize c'x  subject to  A_eq x = b_eq,  A_ge x >= b_ge,  x >= 0.
class LinearProgram {
 public:
  explicit LinearProgram(size_t num_vars);

  size_t num_vars() const { return n_; }

  /// Sets the objective coefficient of variable `j`.
  void SetObjective(size_t j, double c);

  /// Adds `sum coeffs[j]*x[j] == rhs`. Sparse: pairs of (var, coeff).
  void AddEquality(const std::vector<std::pair<size_t, double>>& terms, double rhs);

  /// Adds `sum coeffs[j]*x[j] >= rhs`.
  void AddGreaterEqual(const std::vector<std::pair<size_t, double>>& terms,
                       double rhs);

  /// Adds `sum coeffs[j]*x[j] <= rhs`.
  void AddLessEqual(const std::vector<std::pair<size_t, double>>& terms,
                    double rhs);

  struct Solution {
    bool feasible = false;
    bool bounded = true;
    double objective = 0.0;
    std::vector<double> x;
  };

  /// Solves; x is empty when infeasible.
  Solution Solve() const;

  /// Solves, warm-starting from `*basis` when it matches this program's
  /// structure and is still primal-feasible (skipping phase 1); otherwise
  /// falls back to the cold two-phase solve. On a feasible solve the final
  /// basis is written back to `*basis` for the next call. `basis == nullptr`
  /// is the cold solve.
  Solution Solve(SimplexBasis* basis) const;

 private:
  struct Row {
    std::vector<double> coeffs;
    double rhs;
    int kind;  // 0: ==, 1: >=, -1: <=
  };

  size_t n_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace spotcache
