#include "src/opt/optimizer.h"

#include <algorithm>
#include <cmath>

#include "src/opt/simplex.h"

namespace spotcache {

ProcurementOptimizer::ProcurementOptimizer(std::vector<ProcurementOption> options,
                                           LatencyModel latency_model,
                                           OptimizerConfig config)
    : options_(std::move(options)),
      latency_model_(latency_model),
      config_(config) {}

double ProcurementOptimizer::MaxRatePerInstance(size_t option,
                                                double alpha_access_fraction) const {
  const Duration l_hit = latency_model_.HitBoundFor(config_.mean_latency_target,
                                                    alpha_access_fraction);
  return latency_model_.MaxRate(options_[option].type->capacity, l_hit);
}

double ProcurementOptimizer::UsableRamGb(size_t option) const {
  return options_[option].type->capacity.ram_gb * config_.ram_usable_fraction;
}

void ProcurementOptimizer::AttachObs(Obs* obs) {
  if (obs == nullptr) {
    solve_hist_ = nullptr;
    solves_ = nullptr;
    infeasible_ = nullptr;
    return;
  }
  solve_hist_ = obs->registry.GetHistogram("optimizer/solve_ms");
  solves_ = obs->registry.GetCounter("optimizer/solves");
  infeasible_ = obs->registry.GetCounter("optimizer/infeasible_solves");
}

AllocationPlan ProcurementOptimizer::Solve(const SlotInputs& inputs) const {
  SPOTCACHE_TIMED(solve_hist_);
  if (solves_ != nullptr) {
    solves_->Increment();
  }
  AllocationPlan plan;
  const size_t n_opts = options_.size();
  if (inputs.spot_predictions.size() != n_opts ||
      inputs.existing.size() != n_opts || inputs.available.size() != n_opts) {
    return plan;
  }

  const double m_hat = inputs.working_set_gb;
  const double hot_gb = inputs.hot_ws_fraction * m_hat;
  const double cold_gb =
      std::max(0.0, (config_.alpha - inputs.hot_ws_fraction)) * m_hat;
  if (m_hat <= 0.0 || (hot_gb + cold_gb) <= 0.0) {
    plan.feasible = true;  // nothing to place
    return plan;
  }

  // Traffic density (ops/s per GB) of each data class.
  const double hot_traffic = inputs.lambda_hat * inputs.hot_access_fraction;
  const double cold_traffic =
      inputs.lambda_hat *
      std::max(0.0, inputs.alpha_access_fraction - inputs.hot_access_fraction);
  const double rate_hot = hot_gb > 0.0 ? hot_traffic / hot_gb : 0.0;
  const double rate_cold = cold_gb > 0.0 ? cold_traffic / cold_gb : 0.0;

  // Select usable options and precompute their LP coefficients.
  struct Usable {
    size_t opt;
    double price;        // $/instance-hour expected this slot
    double ram_gb;       // usable cache capacity
    double max_rate;     // lambda^{sb}
    double hot_penalty;  // $/GB for the slot
    double cold_penalty;
    bool on_demand;
  };
  std::vector<Usable> usable;
  const double slot_hours = config_.slot.hours();
  bool any_spot = false;
  for (size_t o = 0; o < n_opts; ++o) {
    if (!inputs.available[o]) {
      continue;
    }
    Usable u;
    u.opt = o;
    u.on_demand = options_[o].is_on_demand();
    u.ram_gb = UsableRamGb(o);
    u.max_rate = MaxRatePerInstance(o, inputs.alpha_access_fraction);
    if (u.max_rate <= 0.0 || u.ram_gb <= 0.0) {
      continue;
    }
    if (u.on_demand) {
      u.price = options_[o].type->od_price_per_hour;
      u.hot_penalty = 0.0;
      u.cold_penalty = 0.0;
    } else {
      const SpotPrediction& pred = inputs.spot_predictions[o];
      if (!pred.usable ||
          pred.lifetime.hours() < config_.min_spot_lifetime_hours) {
        continue;
      }
      const double life_h = std::max(pred.lifetime.hours(), 1e-3);
      u.price = pred.avg_price;
      u.hot_penalty = config_.beta1 * slot_hours / life_h;
      u.cold_penalty = config_.beta2 * slot_hours / life_h;
      any_spot = true;
    }
    usable.push_back(u);
  }
  if (usable.empty()) {
    if (infeasible_ != nullptr) {
      infeasible_->Increment();
    }
    return plan;
  }

  const bool separate = config_.mixing == MixingPolicy::kSeparate;

  // Variables per usable option: [g_hot (GB), g_cold (GB), n (instances),
  // d (deallocation slack, instances)].
  const size_t k = usable.size();
  LinearProgram lp(4 * k);
  auto gh = [](size_t i) { return 4 * i + 0; };
  auto gc = [](size_t i) { return 4 * i + 1; };
  auto nn = [](size_t i) { return 4 * i + 2; };
  auto dd = [](size_t i) { return 4 * i + 3; };

  std::vector<std::pair<size_t, double>> hot_sum;
  std::vector<std::pair<size_t, double>> cold_sum;
  std::vector<std::pair<size_t, double>> od_data;
  for (size_t i = 0; i < k; ++i) {
    const Usable& u = usable[i];
    lp.SetObjective(gh(i), u.hot_penalty);
    lp.SetObjective(gc(i), u.cold_penalty);
    lp.SetObjective(nn(i), u.price * slot_hours);
    lp.SetObjective(dd(i), config_.eta);

    hot_sum.push_back({gh(i), 1.0});
    cold_sum.push_back({gc(i), 1.0});
    if (u.on_demand) {
      od_data.push_back({gh(i), 1.0});
      od_data.push_back({gc(i), 1.0});
    }

    // Capacity: ram*n - g_h - g_c >= 0.
    lp.AddGreaterEqual({{nn(i), u.ram_gb}, {gh(i), -1.0}, {gc(i), -1.0}}, 0.0);
    // Throughput: lam*n - r_h*g_h - r_c*g_c >= 0.
    lp.AddGreaterEqual(
        {{nn(i), u.max_rate}, {gh(i), -rate_hot}, {gc(i), -rate_cold}}, 0.0);
    // Deallocation slack: n + d >= existing.
    lp.AddGreaterEqual({{nn(i), 1.0}, {dd(i), 1.0}},
                       static_cast<double>(inputs.existing[u.opt]));

    if (separate) {
      if (!u.on_demand) {
        lp.AddEquality({{gh(i), 1.0}}, 0.0);  // hot never on spot
      } else if (any_spot) {
        lp.AddEquality({{gc(i), 1.0}}, 0.0);  // cold never on OD when spot exists
      }
    }
  }

  lp.AddEquality(hot_sum, hot_gb);
  lp.AddEquality(cold_sum, cold_gb);
  if (!separate && config_.zeta > 0.0) {
    lp.AddGreaterEqual(od_data, config_.zeta * (hot_gb + cold_gb));
  }

  const LinearProgram::Solution sol =
      config_.warm_start ? lp.Solve(&warm_basis_) : lp.Solve();
  if (!sol.feasible) {
    if (infeasible_ != nullptr) {
      infeasible_->Increment();
    }
    return plan;
  }

  plan.feasible = true;
  plan.lp_objective = sol.objective;
  for (size_t i = 0; i < k; ++i) {
    AllocationItem item;
    item.option = usable[i].opt;
    item.count = static_cast<int>(std::ceil(sol.x[nn(i)] - 1e-6));
    item.x = sol.x[gh(i)] / m_hat;
    item.y = sol.x[gc(i)] / m_hat;
    if (item.count > 0 || item.x > 1e-12 || item.y > 1e-12) {
      // Data with no instance (LP degeneracies) gets one instance to live on.
      if (item.count == 0) {
        item.count = 1;
      }
      plan.items.push_back(item);
    }
  }
  return plan;
}

}  // namespace spotcache
