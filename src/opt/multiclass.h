// Multi-level popularity placement — the paper's footnote-3 extension.
//
// The base optimizer splits the working set into two classes (hot / cold).
// This generalizes to K popularity classes, each a contiguous band of the
// popularity-ranked key space with its own traffic density and bid-failure
// penalty: class 1 might cover accesses up to 60% ("scorching"), class 2 to
// 90% ("warm"), class 3 the remainder ("cold"). Finer classes let the LP
// match each band's CPU-per-GB profile to the instance mix more precisely and
// pay replication/penalty costs only where they matter.
//
// The K=2 instantiation with a 90% cut reproduces the base optimizer's
// problem (tested in test_multiclass.cc); bench_ablation_multiclass measures
// what the extra resolution buys.

#pragma once

#include <vector>

#include "src/opt/procurement.h"
#include "src/sim/latency_model.h"
#include "src/predict/spot_predictor.h"
#include "src/util/time.h"
#include "src/workload/zipf.h"

namespace spotcache {

/// One popularity band (classes are ordered hottest first; fractions are of
/// the full working set / access stream and sum to alpha / F(alpha)).
struct PopularityClass {
  double ws_fraction = 0.0;      // share of the working set in this band
  double access_fraction = 0.0;  // share of all accesses hitting this band
  /// Bid-failure penalty coefficient, $ per GB-hour over predicted lifetime
  /// (beta_1-like for hot bands, beta_2-like for cold ones).
  double loss_penalty = 0.0;
};

/// Cuts the key space at the given access-coverage levels (ascending, e.g.
/// {0.6, 0.9} -> three classes). Penalties interpolate from `hot_penalty`
/// for the first class down to `cold_penalty` for the last, proportional to
/// each class's access share. A minimum band size of `min_band_ws_fraction`
/// keeps LP coefficients conditioned.
std::vector<PopularityClass> MakePopularityClasses(
    const ZipfPopularity& popularity, const std::vector<double>& coverage_cuts,
    double alpha, double hot_penalty, double cold_penalty,
    double min_band_ws_fraction = 1e-4);

struct MultiClassInputs {
  double lambda_hat = 0.0;
  double working_set_gb = 0.0;
  std::vector<PopularityClass> classes;
  std::vector<SpotPrediction> spot_predictions;  // parallel to options
  std::vector<int> existing;
  std::vector<bool> available;
};

/// Allocation with per-class data fractions (parallel to the class vector).
struct MultiClassItem {
  size_t option = 0;
  int count = 0;
  std::vector<double> class_fractions;  // of the working set, per class
};

struct MultiClassPlan {
  bool feasible = false;
  std::vector<MultiClassItem> items;
  double lp_objective = 0.0;

  int TotalInstances() const;
  /// Total data fraction placed on on-demand options.
  double OnDemandDataFraction(const std::vector<ProcurementOption>& options) const;
  /// Collapses classes {0..k-1 hottest} vs the rest into an AllocationPlan
  /// (x = first `hot_classes` bands, y = the rest) for reuse of the cluster
  /// actuation path.
  AllocationPlan Collapse(size_t hot_classes) const;
};

class MultiClassOptimizer {
 public:
  struct Config {
    double alpha = 1.0;
    double zeta = 0.10;
    double eta = 0.01;
    Duration slot = Duration::Hours(1);
    Duration mean_latency_target = Duration::Micros(800);
    double min_spot_lifetime_hours = 1.0;
    double ram_usable_fraction = 0.85;
  };

  MultiClassOptimizer(std::vector<ProcurementOption> options,
                      LatencyModel latency_model, Config config);

  const std::vector<ProcurementOption>& options() const { return options_; }
  const Config& config() const { return config_; }

  MultiClassPlan Solve(const MultiClassInputs& inputs) const;

 private:
  std::vector<ProcurementOption> options_;
  LatencyModel latency_model_;
  Config config_;
};

}  // namespace spotcache
