// Procurement decision types: the (market, bid) option space and the per-slot
// allocation plan (the paper's N, x, y variables).

#pragma once

#include <string>
#include <vector>

#include "src/cloud/instance_types.h"
#include "src/cloud/spot_market.h"

namespace spotcache {

/// One procurement option: an on-demand type, or a (spot market, bid) pair.
/// The paper treats on-demand as a degenerate spot option with infinite
/// lifetime and a fixed price; we keep the distinction explicit.
struct ProcurementOption {
  enum class Kind { kOnDemand, kSpot };

  Kind kind = Kind::kOnDemand;
  const InstanceTypeSpec* type = nullptr;
  const SpotMarket* market = nullptr;  // spot only
  double bid = 0.0;                    // spot only, absolute $/hour
  std::string label;

  bool is_on_demand() const { return kind == Kind::kOnDemand; }
};

/// Builds the evaluation option set: every on-demand candidate type plus
/// every (market, bid multiplier x on-demand price) pair.
std::vector<ProcurementOption> BuildOptions(
    const InstanceCatalog& catalog, const std::vector<SpotMarket>& markets,
    const std::vector<double>& bid_multipliers);

/// Allocation for a single option within one control slot.
struct AllocationItem {
  size_t option = 0;  // index into the option vector
  int count = 0;      // N + N-tilde: instances to hold this slot
  double x = 0.0;     // hot working-set fraction placed here
  double y = 0.0;     // cold working-set fraction placed here
};

struct AllocationPlan {
  bool feasible = false;
  std::vector<AllocationItem> items;  // only options with count>0 or data
  double lp_objective = 0.0;          // relaxed objective value ($ for the slot)

  int TotalInstances() const;
  int CountFor(size_t option) const;
  const AllocationItem* ItemFor(size_t option) const;
  /// Working-set fraction (x+y) placed on on-demand options.
  double OnDemandDataFraction(const std::vector<ProcurementOption>& options) const;
};

}  // namespace spotcache
