// SpotCacheSystem: the library's top-level facade.
//
// Wires the whole paper system together — simulated cloud, global controller,
// cluster actuation, mcrouter-style router, online key partitioner, real LRU
// cache nodes, and the persistent back-end — behind a small API:
//
//   SpotCacheSystem system(config);
//   system.AdvanceSlot(observed_rate, observed_working_set_gb);  // control
//   CacheResponse r = system.Get(key);                           // data path
//
// The control plane runs at slot (hour) granularity; the data plane executes
// individual requests against real cache nodes, with latencies taken from the
// queueing model. Examples and integration tests build on this class.

#pragma once

#include <memory>
#include <unordered_map>

#include "src/cache/backend_store.h"
#include "src/cache/cache_node.h"
#include "src/cloud/cloud_provider.h"
#include "src/core/cluster.h"
#include "src/core/controller.h"
#include "src/core/experiment.h"
#include "src/resilience/resilience.h"
#include "src/routing/key_partitioner.h"
#include "src/routing/router.h"
#include "src/workload/zipf.h"

namespace spotcache {

class SpotCacheSystem {
 public:
  struct Config {
    Approach approach = Approach::kProp;
    /// Key population and popularity used for the analytic hot fraction.
    uint64_t num_keys = 1'000'000;
    double zipf_theta = 1.0;
    uint32_t value_bytes = 4096;
    OptimizerConfig optimizer;
    ClusterConfig cluster;
    std::vector<double> bid_multipliers = {1.0, 5.0};
    uint64_t seed = 42;
    /// Length of the market traces to pre-generate.
    Duration market_horizon = Duration::Days(30);
    /// Observability bundle (non-owning, may be null): attached to the
    /// provider, controller, cluster, router, and every cache node.
    Obs* obs = nullptr;
    /// Request-path resilience. When enabled, Get() walks the degradation
    /// ladder primary -> passive backup -> backend -> shed, with each rung
    /// guarded (circuit breakers for nodes, admission control for the
    /// backend). Disabled by default: the legacy data path is kept verbatim
    /// so existing runs stay bit-identical.
    ResilienceConfig resilience;
  };

  explicit SpotCacheSystem(const Config& config);

  /// Control-plane tick: observes the past slot's demand, re-plans and
  /// actuates, then advances the clock one slot, processing cloud events.
  void AdvanceSlot(double observed_lambda, double observed_working_set_gb);

  /// Data-plane GET. Misses are served by the back-end and filled.
  CacheResponse Get(KeyId key);
  /// Data-plane SET (write-through to the back-end; mirrored to the backup
  /// when the primary is a spot node and a backup exists).
  CacheResponse Put(KeyId key, uint32_t value_bytes);

  struct Stats {
    uint64_t gets = 0;
    uint64_t sets = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t dropped = 0;  // shed by admission control (resilience layer)
    double hit_rate = 0.0;
    int nodes = 0;
    int backups = 0;
    int revocations = 0;
    double total_cost = 0.0;
  };
  Stats GetStats() const;

  /// The resilience layer, or nullptr when disabled.
  ResilienceLayer* resilience() { return resilience_.get(); }
  const ResilienceLayer* resilience() const { return resilience_.get(); }

  SimTime now() const { return provider_.now(); }
  const std::vector<ProcurementOption>& options() const {
    return controller_->options();
  }
  const AllocationPlan& current_plan() const { return cluster_->plan(); }
  const CloudProvider& provider() const { return provider_; }
  const Router& router() const { return router_; }
  const KeyPartitioner& partitioner() const { return partitioner_; }

 private:
  /// Rebuilds router weights and cache-node set from cluster holdings.
  void SyncDataPlane();
  CacheNode* NodeFor(InstanceId id);
  /// True if the instance backing `id` was bought on the spot market.
  bool IsSpotInstance(InstanceId id) const;
  /// Resilience GET path: walks the degradation ladder.
  CacheResponse GetWithLadder(KeyId key, bool hot);
  /// Asks the admission controller for a backend slot (cold sheds first).
  bool AdmitBackend(bool hot);

  Config config_;
  const InstanceCatalog catalog_;
  CloudProvider provider_;
  std::unique_ptr<GlobalController> controller_;
  std::unique_ptr<Cluster> cluster_;
  Router router_;
  KeyPartitioner partitioner_;
  BackendStore backend_;
  ZipfPopularity popularity_;
  std::unique_ptr<ResilienceLayer> resilience_;
  std::unordered_map<InstanceId, std::unique_ptr<CacheNode>> nodes_;
  double last_lambda_ = 0.0;
  uint64_t gets_ = 0;
  uint64_t sets_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace spotcache
