#include "src/core/cluster.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace spotcache {

namespace {
constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

// A warm-up window's average affected traffic: coverage of the replacement
// grows during the window, so on average roughly half the affected traffic is
// still being served by the fallback path at any instant.
constexpr double kWarmupAverageFactor = 0.5;

double CopySecondsFor(double gigabytes, double mbps) {
  if (gigabytes <= 0.0) {
    return 0.0;
  }
  if (mbps <= 0.0) {
    return 3600.0;  // no path: cap at an hour of degradation
  }
  return gigabytes * kBytesPerGb * 8.0 / (mbps * 1e6);
}
}  // namespace

Cluster::Cluster(CloudProvider* provider,
                 const std::vector<ProcurementOption>* options,
                 ClusterConfig config)
    : provider_(provider), options_(options), config_(std::move(config)) {
  holdings_.resize(options_->size());
}

void Cluster::AttachResilience(ResilienceLayer* layer) {
  resilience_ = layer;
  if (layer != nullptr) {
    replacement_policy_ =
        RetryPolicy(config_.replacement_retry, layer->config().seed);
  }
}

void Cluster::AttachObs(Obs* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    launched_ = terminated_ = bid_rejected_ = launch_failed_ = nullptr;
    backups_gauge_ = nullptr;
    return;
  }
  launched_ = obs->registry.GetCounter("cluster/launched");
  terminated_ = obs->registry.GetCounter("cluster/terminated");
  bid_rejected_ = obs->registry.GetCounter("cluster/bid_rejections");
  launch_failed_ = obs->registry.GetCounter("cluster/launch_failures");
  backups_gauge_ = obs->registry.GetGauge("cluster/backups");
}

const InstanceTypeSpec& Cluster::BackupType() const {
  if (config_.backup_type != nullptr) {
    return *config_.backup_type;
  }
  return *provider_->catalog().Find("t2.medium");
}

double Cluster::TrafficWeight(const AllocationItem& item) const {
  const SlotContext& c = context_;
  double w = 0.0;
  if (c.hot_ws_fraction > 0.0) {
    w += item.x / c.hot_ws_fraction * c.hot_access_fraction;
  }
  const double cold_ws = c.alpha - c.hot_ws_fraction;
  if (cold_ws > 0.0) {
    w += item.y / cold_ws *
         std::max(0.0, c.alpha_access_fraction - c.hot_access_fraction);
  }
  return w;
}

Cluster::ApplyResult Cluster::Apply(const AllocationPlan& plan,
                                    const SlotContext& context) {
  ApplyResult result;
  plan_ = plan;
  context_ = context;

  // Replacements from the previous slot are superseded by the new plan.
  for (InstanceId id : replacements_) {
    provider_->Terminate(id);
  }
  replacements_.clear();
  replacement_for_.clear();
  pending_.clear();  // reconciliation re-provisions any remaining shortfall

  // Reconcile each option's holdings with its target count.
  for (size_t o = 0; o < options_->size(); ++o) {
    auto& held = holdings_[o];
    held.erase(std::remove_if(held.begin(), held.end(),
                              [this](InstanceId id) {
                                const Instance* inst = provider_->Get(id);
                                return inst == nullptr || !inst->alive();
                              }),
               held.end());
    const int target = plan.CountFor(o);
    while (static_cast<int>(held.size()) > target) {
      provider_->Terminate(held.back());
      held.pop_back();
      ++result.terminated;
    }
    const ProcurementOption& opt = (*options_)[o];
    while (static_cast<int>(held.size()) < target) {
      InstanceId id;
      if (opt.is_on_demand()) {
        id = provider_->LaunchOnDemand(*opt.type, "primary:" + opt.label);
      } else {
        id = provider_->RequestSpot(*opt.market, opt.bid, "primary:" + opt.label);
      }
      if (id == kInvalidInstanceId) {
        // Distinguish a market move (bid rejection) from an injected launch
        // outage: on-demand never bid-fails, and a spot request whose bid
        // still clears the price can only have hit the outage.
        if (opt.is_on_demand() || provider_->SpotPrice(*opt.market) <= opt.bid) {
          ++result.launch_failed;
          ++total_launch_failures_;
        } else {
          ++result.bid_rejected;
          ++total_bid_rejections_;
        }
        break;  // shortfall stands this slot; next reconciliation retries
      }
      held.push_back(id);
      ++result.launched;
    }
  }

  // Size the backup fleet to the hot data sitting on spot instances.
  int backup_target = 0;
  if (config_.use_backup) {
    double hot_on_spot_gb = 0.0;
    for (const auto& item : plan.items) {
      if (!(*options_)[item.option].is_on_demand()) {
        hot_on_spot_gb += item.x * context.working_set_gb;
      }
    }
    const double per_backup =
        BackupType().capacity.ram_gb * config_.ram_usable_fraction;
    if (hot_on_spot_gb > 1e-9) {
      backup_target =
          static_cast<int>(std::ceil(hot_on_spot_gb / per_backup - 1e-9));
    }
  }
  backups_.erase(std::remove_if(backups_.begin(), backups_.end(),
                                [this](InstanceId id) {
                                  const Instance* inst = provider_->Get(id);
                                  return inst == nullptr || !inst->alive();
                                }),
                 backups_.end());
  while (static_cast<int>(backups_.size()) > backup_target) {
    provider_->Terminate(backups_.back());
    backups_.pop_back();
  }
  while (static_cast<int>(backups_.size()) < backup_target) {
    const InstanceId id = provider_->LaunchBurstable(BackupType(), "backup");
    if (id == kInvalidInstanceId) {
      ++result.launch_failed;
      ++total_launch_failures_;
      break;  // launch outage: the next reconciliation retries
    }
    backups_.push_back(id);
  }
  result.backup_count = static_cast<int>(backups_.size());
  if (obs_ != nullptr) {
    launched_->Increment(result.launched);
    terminated_->Increment(result.terminated);
    bid_rejected_->Increment(result.bid_rejected);
    launch_failed_->Increment(result.launch_failed);
    backups_gauge_->Set(static_cast<double>(result.backup_count));
  }
  return result;
}

void Cluster::HandleWarning(const Instance& inst) {
  if (replacement_for_.count(inst.id) > 0) {
    return;
  }
  // Only react for instances we actually hold.
  bool ours = false;
  for (const auto& held : holdings_) {
    if (std::find(held.begin(), held.end(), inst.id) != held.end()) {
      ours = true;
      break;
    }
  }
  if (!ours) {
    return;
  }
  // Launch the on-demand replacement immediately (paper: upon receiving the
  // two-minute warning). Same hardware type, on-demand billing.
  const InstanceId repl =
      provider_->LaunchOnDemand(*inst.type, "replacement:" + inst.tag);
  if (repl == kInvalidInstanceId) {
    // Injected launch outage; the revocation handler retries at revocation
    // time, and failing that the next reconciliation re-provisions.
    ++total_launch_failures_;
    return;
  }
  replacement_for_[inst.id] = repl;
  replacements_.push_back(repl);
}

double Cluster::BackupCopyMbps(SimTime from, Duration window, double demand_mbps) {
  if (backups_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  const double per_backup = demand_mbps / static_cast<double>(backups_.size());
  for (InstanceId id : backups_) {
    Instance* b = provider_->GetMutable(id);
    if (b == nullptr || !b->alive() || b->burst == std::nullopt) {
      continue;
    }
    const double got = b->burst->RunNetwork(from, from + window, per_backup);
    if (obs_ != nullptr && got + 1e-9 < per_backup) {
      // The backup's token bucket ran dry mid-copy: it delivered less than
      // the warm-up stream demanded.
      obs_->registry.GetCounter("cluster/token_exhaustions")->Increment();
      obs_->tracer.TokenExhaustion(from, id, "warmup_copy");
    }
    total += got;
  }
  return total;
}

void Cluster::HandleRevocation(const Instance& inst) {
  // A burstable backup killed by fault injection: repair the fleet in place.
  // Primary traffic is unaffected, but hot shards lose their warm-up source
  // until the replacement backup boots.
  const auto bit = std::find(backups_.begin(), backups_.end(), inst.id);
  if (bit != backups_.end()) {
    backups_.erase(bit);
    ++backup_losses_;
    const InstanceId repl = provider_->LaunchBurstable(BackupType(), "backup");
    if (repl == kInvalidInstanceId) {
      ++total_launch_failures_;  // outage: next reconciliation re-provisions
    } else {
      backups_.push_back(repl);
    }
    return;
  }

  ++total_revocations_;
  ++step_revocations_;

  // Locate the option the instance belonged to.
  size_t option = options_->size();
  for (size_t o = 0; o < holdings_.size(); ++o) {
    auto it = std::find(holdings_[o].begin(), holdings_[o].end(), inst.id);
    if (it != holdings_[o].end()) {
      holdings_[o].erase(it);
      option = o;
      break;
    }
  }
  if (option == options_->size()) {
    return;  // not one of ours (already superseded)
  }
  step_revoked_options_.push_back(option);
  const AllocationItem* item = plan_.ItemFor(option);
  if (item == nullptr || item->count <= 0) {
    return;
  }
  const double n = static_cast<double>(item->count);
  const SlotContext& c = context_;

  // Per-instance shares of data and traffic.
  const double hot_gb = item->x * c.working_set_gb / n;
  const double cold_gb = item->y * c.working_set_gb / n;
  double hot_traffic = 0.0;
  if (c.hot_ws_fraction > 0.0) {
    hot_traffic = item->x / c.hot_ws_fraction * c.hot_access_fraction / n;
  }
  double cold_traffic = 0.0;
  const double cold_ws = c.alpha - c.hot_ws_fraction;
  if (cold_ws > 0.0) {
    cold_traffic = item->y / cold_ws *
                   std::max(0.0, c.alpha_access_fraction - c.hot_access_fraction) /
                   n;
  }

  const SimTime now = provider_->now();

  // Replacement readiness (scenario A: ready before revocation; B: after).
  // The paper's Fig 4 breakdown: "1a" = warned and the replacement is ready
  // at revocation; "1b" = warned but the replacement is still booting;
  // "2" = the revocation arrived with no (usable) warning.
  SimTime ready = now;
  const char* warmup_case = "2";
  auto rit = replacement_for_.find(inst.id);
  if (rit != replacement_for_.end()) {
    const Instance* repl = provider_->Get(rit->second);
    if (repl != nullptr) {
      ready = std::max(now, repl->ready_time);
      holdings_[option].push_back(rit->second);  // joins the pool post-warm-up
    }
    warmup_case = ready > now ? "1b" : "1a";
  } else {
    // No warning was processed (missed warning, revocation at boot, or the
    // warning-time launch fell into an outage); launch now.
    const InstanceId repl =
        provider_->LaunchOnDemand(*inst.type, "replacement:" + inst.tag);
    if (repl == kInvalidInstanceId) {
      // Still inside a launch outage: the shard stays degraded (bounded by
      // the retry horizon). Legacy behavior waits for the next slot-boundary
      // reconciliation; with the resilience layer attached the launch is
      // retried in-step under the replacement_retry policy.
      ++total_launch_failures_;
      ++failed_replacements_;
      if (obs_ != nullptr) {
        obs_->registry.GetCounter("cluster/replacement_failures")->Increment();
        obs_->tracer.ReplacementFailed(now, inst.id);
      }
      SimTime until = now + config_.replacement_retry.initial_delay;
      if (resilience_ != nullptr) {
        const Duration delay = replacement_policy_.Delay(inst.id, 1);
        until = now + delay;  // == initial_delay: attempt 1 is un-jittered
        pending_.push_back({option, inst.type, inst.tag, inst.id, 1, until,
                            hot_gb, cold_gb, hot_traffic, cold_traffic});
        resilience_->RecordOutcome(
            ResilienceLayer::kOptionHealthIdBase | option, now,
            HealthOutcome::kError);
        resilience_->CountRetry(now, inst.id, 1, delay);
      }
      PushFailureDegradations(until, hot_traffic, cold_traffic);
      return;
    }
    replacements_.push_back(repl);
    replacement_for_[inst.id] = repl;
    const Instance* r = provider_->Get(repl);
    ready = r->ready_time;
    holdings_[option].push_back(repl);
    if (resilience_ != nullptr) {
      resilience_->RecordOutcome(ResilienceLayer::kOptionHealthIdBase | option,
                                 now, HealthOutcome::kOk);
    }
  }

  ScheduleWarmup(*inst.type, inst.id, warmup_case, hot_gb, cold_gb,
                 hot_traffic, cold_traffic, now, ready);
}

void Cluster::PushFailureDegradations(SimTime until, double hot_traffic,
                                      double cold_traffic) {
  const Duration miss_latency = config_.latency_model.params().base_latency +
                                config_.latency_model.params().miss_penalty;
  const Duration backup_latency =
      config_.latency_model.params().base_latency + config_.backup_hop_latency;
  const bool backup_av = config_.use_backup && !backups_.empty();
  if (hot_traffic > 0.0) {
    degradations_.push_back({until, hot_traffic,
                             backup_av ? backup_latency : miss_latency,
                             /*backend=*/!backup_av, /*cold=*/false});
  }
  if (cold_traffic > 0.0) {
    degradations_.push_back(
        {until, cold_traffic, miss_latency, /*backend=*/true, /*cold=*/true});
  }
}

void Cluster::ScheduleWarmup(const InstanceTypeSpec& type, uint64_t inst_id,
                             const char* warmup_case, double hot_gb,
                             double cold_gb, double hot_traffic,
                             double cold_traffic, SimTime now, SimTime ready) {
  const Duration miss_latency = config_.latency_model.params().base_latency +
                                config_.latency_model.params().miss_penalty;
  const Duration backup_latency =
      config_.latency_model.params().base_latency + config_.backup_hop_latency;

  // Interim gap (case 2 / 1(b)): revoked but replacement not yet ready.
  const bool backup_available = config_.use_backup && !backups_.empty();
  if (ready > now) {
    if (backup_available && hot_traffic > 0.0) {
      degradations_.push_back(
          {ready, hot_traffic, backup_latency, /*backend=*/false, /*cold=*/false});
    } else if (hot_traffic > 0.0) {
      degradations_.push_back(
          {ready, hot_traffic, miss_latency, /*backend=*/true, /*cold=*/false});
    }
    if (cold_traffic > 0.0) {
      degradations_.push_back(
          {ready, cold_traffic, miss_latency, /*backend=*/true, /*cold=*/true});
    }
  }

  // Warm-up windows from `ready`.
  const double repl_net = type.capacity.net_mbps * config_.copy_efficiency;
  Duration w_hot;
  Duration w_cold;
  if (backup_available && hot_gb > 0.0) {
    // Hot content warms from the backup at min(backup burst, replacement NIC).
    const Duration est_window =
        Duration::FromSecondsF(CopySecondsFor(hot_gb, repl_net));
    const double backup_mbps =
        BackupCopyMbps(ready, est_window, repl_net / config_.copy_efficiency) *
        config_.copy_efficiency;
    const double rate = std::min(repl_net, backup_mbps > 0.0 ? backup_mbps : repl_net);
    w_hot = Duration::FromSecondsF(CopySecondsFor(hot_gb, rate));
    if (hot_traffic > 0.0) {
      degradations_.push_back({ready + w_hot,
                               hot_traffic * kWarmupAverageFactor,
                               backup_latency, /*backend=*/false,
                               /*cold=*/false});
    }
  } else if (hot_gb > 0.0 && hot_traffic > 0.0) {
    w_hot = Duration::FromSecondsF(
        CopySecondsFor(hot_gb, config_.backend_copy_mbps));
    degradations_.push_back({ready + w_hot,
                             hot_traffic * kWarmupAverageFactor, miss_latency,
                             /*backend=*/true, /*cold=*/false});
  }
  if (cold_gb > 0.0 && cold_traffic > 0.0) {
    // Cold data is never backed up; it always refills from the back-end.
    w_cold = Duration::FromSecondsF(
        CopySecondsFor(cold_gb, config_.backend_copy_mbps));
    degradations_.push_back({ready + w_cold,
                             cold_traffic * kWarmupAverageFactor, miss_latency,
                             /*backend=*/true, /*cold=*/true});
  }
  if (obs_ != nullptr) {
    obs_->registry.GetCounter("cluster/warmups", {{"case", warmup_case}})
        ->Increment();
    obs_->tracer.WarmupStart(now, inst_id, warmup_case, hot_gb, cold_gb, ready);
    // Future-dated: the predicted end of the slower of the two copy streams.
    obs_->tracer.WarmupEnd(ready + std::max(w_hot, w_cold), inst_id,
                           warmup_case);
  }
}

void Cluster::RetryPendingReplacements(SimTime now) {
  if (resilience_ == nullptr || pending_.empty()) {
    return;
  }
  std::vector<PendingReplacement> still;
  still.reserve(pending_.size());
  for (PendingReplacement& p : pending_) {
    if (p.next_attempt > now) {
      still.push_back(std::move(p));
      continue;
    }
    const uint64_t health_id = ResilienceLayer::kOptionHealthIdBase | p.option;
    if (!resilience_->AllowRequest(health_id, now)) {
      // The option's breaker is open (repeated launch failures): defer the
      // attempt to the breaker's deterministic probe time instead of burning
      // the retry budget into a known outage.
      p.next_attempt = resilience_->BreakerFor(health_id).probe_at();
      still.push_back(std::move(p));
      continue;
    }
    if (replacement_policy_.Exhausted(p.attempts)) {
      // Retry budget spent: leave the shortfall to slot-boundary
      // reconciliation (Apply), which re-provisions from the plan.
      continue;
    }
    ++p.attempts;
    const InstanceId repl =
        provider_->LaunchOnDemand(*p.type, "replacement:" + p.tag);
    if (repl == kInvalidInstanceId) {
      ++total_launch_failures_;
      ++failed_replacements_;
      resilience_->RecordOutcome(health_id, now, HealthOutcome::kError);
      if (obs_ != nullptr) {
        obs_->registry.GetCounter("cluster/replacement_failures")->Increment();
        obs_->tracer.ReplacementFailed(now, p.op_id);
      }
      const Duration delay = replacement_policy_.Delay(p.op_id, p.attempts);
      p.next_attempt = now + delay;
      resilience_->CountRetry(now, p.op_id, p.attempts, delay);
      PushFailureDegradations(p.next_attempt, p.hot_traffic, p.cold_traffic);
      still.push_back(std::move(p));
      continue;
    }
    resilience_->RecordOutcome(health_id, now, HealthOutcome::kOk);
    replacements_.push_back(repl);
    holdings_[p.option].push_back(repl);
    const Instance* r = provider_->Get(repl);
    const SimTime ready = std::max(now, r->ready_time);
    ScheduleWarmup(*p.type, p.op_id, "retry", p.hot_gb, p.cold_gb,
                   p.hot_traffic, p.cold_traffic, now, ready);
  }
  pending_ = std::move(still);
}

Cluster::StepPerf Cluster::Step(SimTime to, double lambda_actual) {
  const SimTime from = provider_->now();
  const Duration step_len = to - from;
  step_revocations_ = 0;
  step_revoked_options_.clear();

  for (const ProviderEvent& ev : provider_->AdvanceTo(to)) {
    const Instance* inst = provider_->Get(ev.instance_id);
    if (inst == nullptr) {
      continue;
    }
    switch (ev.kind) {
      case ProviderEventKind::kRevocationWarning:
        HandleWarning(*inst);
        break;
      case ProviderEventKind::kRevoked:
        HandleRevocation(*inst);
        break;
      case ProviderEventKind::kInstanceReady:
        break;
    }
  }

  RetryPendingReplacements(to);

  StepPerf perf;
  perf.revocations = step_revocations_;
  perf.revoked_options = step_revoked_options_;
  const SlotContext& c = context_;
  if (lambda_actual <= 0.0 || step_len <= Duration::Micros(0)) {
    perf.mean_latency = config_.latency_model.params().base_latency;
    perf.p95_latency = perf.mean_latency;
    return perf;
  }

  // A latency-mixture component. `backend` marks traffic that lands on the
  // back-end store (counts against its capacity); shed_class orders admission
  // shedding: 0 = never shed (cache-served, write-through), 1 = cold
  // backend-bound (shed first), 2 = hot backend-bound (shed last).
  struct MixEntry {
    double lat = 0.0;  // seconds
    double w = 0.0;    // fraction of arrivals
    bool backend = false;
    int shed_class = 0;
  };

  // Active degradation mass over this step (time-overlap weighted). Windows
  // are created at event times within the step; treat each as covering from
  // its creation to `until`, clipped to the step.
  double degraded = 0.0;
  std::vector<MixEntry> mixture;
  for (const auto& d : degradations_) {
    if (d.until <= from) {
      continue;
    }
    const double overlap =
        std::min(1.0, (std::min(d.until, to) - from) / step_len);
    const double w = d.traffic_fraction * overlap;
    if (w <= 0.0) {
      continue;
    }
    degraded += w;
    mixture.push_back({d.served_latency.seconds(), w, d.backend,
                       d.backend ? (d.cold ? 1 : 2) : 0});
  }
  degradations_.erase(
      std::remove_if(degradations_.begin(), degradations_.end(),
                     [to](const Degradation& d) { return d.until <= to; }),
      degradations_.end());
  degraded = std::min(degraded, c.alpha_access_fraction);
  perf.affected_fraction = degraded;

  // Healthy in-memory traffic, spread across options by plan weight.
  const double healthy_scale =
      c.alpha_access_fraction > 0.0
          ? std::max(0.0, c.alpha_access_fraction - degraded) /
                c.alpha_access_fraction
          : 0.0;
  for (const auto& item : plan_.items) {
    const double w = TrafficWeight(item) * healthy_scale;
    if (w <= 0.0) {
      continue;
    }
    // Count instances currently able to serve.
    int running = 0;
    for (InstanceId id : holdings_[item.option]) {
      const Instance* inst = provider_->Get(id);
      if (inst != nullptr && inst->state == InstanceState::kRunning) {
        ++running;
      }
    }
    const Duration miss_latency = config_.latency_model.params().base_latency +
                                  config_.latency_model.params().miss_penalty;
    if (running == 0) {
      // Nothing to serve from: the whole share goes to the back-end. The mix
      // of hot and cold keys makes it late-shed (hot) under admission.
      mixture.push_back({miss_latency.seconds(), w, true, 2});
      perf.affected_fraction += w;
      continue;
    }
    const double per_node = lambda_actual * w / static_cast<double>(running);
    const NodeLatency nl = config_.latency_model.HitLatency(
        per_node, (*options_)[item.option].type->capacity);
    perf.saturated = perf.saturated || nl.saturated;
    mixture.push_back({nl.mean.seconds(), w * 0.95, false, 0});
    mixture.push_back({nl.p95.seconds(), w * 0.05, false, 0});
  }

  // Misses past alpha go to the back-end (the coldest tail of the keyspace).
  const double miss_w = std::max(0.0, 1.0 - c.alpha_access_fraction);
  if (miss_w > 0.0) {
    const Duration miss_latency = config_.latency_model.params().base_latency +
                                  config_.latency_model.params().miss_penalty;
    mixture.push_back({miss_latency.seconds(), miss_w, true, 1});
  }
  // Writes pay the synchronous write-through to the back-end. The read-side
  // mixture weights were built as fractions of the read stream; rescale and
  // append the write mass. Writes are never shed (dropping one loses data).
  const double write_w = std::max(0.0, 1.0 - c.read_fraction);
  if (write_w > 0.0) {
    for (auto& e : mixture) {
      e.w *= c.read_fraction;
    }
    const Duration write_latency = config_.latency_model.params().base_latency +
                                   config_.latency_model.params().miss_penalty;
    mixture.push_back({write_latency.seconds(), write_w, true, 0});
    perf.affected_fraction *= c.read_fraction;
  }
  perf.hit_fraction = std::max(
      0.0, c.read_fraction * (1.0 - miss_w) - perf.affected_fraction);

  // Admission control: when backend-bound load exceeds the backend's
  // capacity, shed the overflow cold-first (bounded by the shed budget).
  // Shed requests are dropped, so they leave the latency mixture entirely.
  if (resilience_ != nullptr) {
    double backend_w = 0.0;
    double cold_w = 0.0;
    double hot_w = 0.0;
    for (const auto& e : mixture) {
      if (e.backend) backend_w += e.w;
      if (e.shed_class == 1) cold_w += e.w;
      if (e.shed_class == 2) hot_w += e.w;
    }
    const ShedSplit split = resilience_->admission().PlanShed(
        lambda_actual * backend_w, lambda_actual, lambda_actual * hot_w,
        lambda_actual * cold_w);
    if (split.overall > 0.0) {
      double shed = 0.0;
      for (auto& e : mixture) {
        const double rate = e.shed_class == 1   ? split.cold
                            : e.shed_class == 2 ? split.hot
                                                : 0.0;
        shed += e.w * rate;
        e.w *= 1.0 - rate;
      }
      perf.shed_fraction = shed;
      resilience_->RecordShed(to, "cluster", shed);
    }
  }

  // Collapse the mixture into mean and p95.
  double total_w = 0.0;
  double mean = 0.0;
  for (const auto& e : mixture) {
    total_w += e.w;
    mean += e.lat * e.w;
  }
  if (total_w <= 0.0) {
    perf.mean_latency = config_.latency_model.params().base_latency;
    perf.p95_latency = perf.mean_latency;
    return perf;
  }
  mean /= total_w;
  std::sort(mixture.begin(), mixture.end(),
            [](const MixEntry& a, const MixEntry& b) { return a.lat < b.lat; });
  double acc = 0.0;
  double p95 = mixture.back().lat;
  for (const auto& e : mixture) {
    acc += e.w;
    // Strictly exceed the 0.95 mass so a component ending exactly at the
    // boundary doesn't masquerade as the tail.
    if (acc > 0.95 * total_w * (1.0 + 1e-12)) {
      p95 = e.lat;
      break;
    }
  }
  perf.mean_latency = Duration::FromSecondsF(mean);
  perf.p95_latency = Duration::FromSecondsF(p95);
  return perf;
}

std::vector<int> Cluster::ExistingCounts() const {
  std::vector<int> counts(options_->size(), 0);
  for (size_t o = 0; o < holdings_.size(); ++o) {
    for (InstanceId id : holdings_[o]) {
      const Instance* inst = provider_->Get(id);
      if (inst != nullptr && inst->alive()) {
        ++counts[o];
      }
    }
  }
  return counts;
}

void Cluster::Shutdown() {
  for (auto& held : holdings_) {
    for (InstanceId id : held) {
      provider_->Terminate(id);
    }
    held.clear();
  }
  for (InstanceId id : backups_) {
    provider_->Terminate(id);
  }
  backups_.clear();
  for (InstanceId id : replacements_) {
    provider_->Terminate(id);
  }
  replacements_.clear();
}

}  // namespace spotcache
