// Key-level failure-recovery simulation (paper §3.3 / §5.4, Figure 11).
//
// Simulates the content affected by one spot revocation: a replacement node
// warms up from the passive backup (hot content) and the persistent back-end
// (cold content) while live traffic keeps arriving. The warm-up proceeds in
// popularity (MRU) order, so traffic coverage grows as the popularity CDF of
// the copied prefix. Burstable backups copy at their peak bandwidth while
// network tokens last and at baseline afterwards — the dynamics that make
// t2.medium match the twice-as-expensive c3.large in Figure 11(a).

#pragma once

#include <optional>
#include <vector>

#include "src/cloud/instance_types.h"
#include "src/obs/obs.h"
#include "src/resilience/admission_controller.h"
#include "src/sim/latency_model.h"
#include "src/util/time.h"

namespace spotcache {

struct RecoveryConfig {
  /// Data held by the revoked instance.
  double data_gb = 10.0;
  /// Hot portion (replicated on the backup).
  double hot_gb = 3.0;
  double zipf_theta = 1.0;
  /// Request rate to the affected content (ops/s).
  double arrival_rate = 40'000.0;
  uint32_t item_bytes = 4096;

  /// Backup instance type; nullptr = no backup (Prop_NoBackup).
  const InstanceTypeSpec* backup_type = nullptr;
  /// Token balance of the backup at failure, as a fraction of its caps.
  double initial_credit_fraction = 1.0;

  /// Replacement instance type (the node being warmed); nullptr = m4.large.
  const InstanceTypeSpec* replacement_type = nullptr;
  /// Fraction of line rate warm-up copies achieve.
  double copy_efficiency = 0.7;
  /// Warm-from-back-end throttle (Mbps): bulk refills must not flatten the
  /// production back-end, so they are rate-limited.
  double backend_copy_mbps = 100.0;

  /// Scenario B: how long after the revocation the replacement becomes ready
  /// (zero = scenario A, ready at revocation).
  Duration replacement_delay = Duration::Seconds(0);

  /// OD+Spot_Sep mode: only the cold share was on the revoked node; hot
  /// traffic is unaffected and keeps its normal latency.
  bool separation_mode = false;

  /// Checkpoint/restore recovery (the prior-work baseline of [13,19,39,51]
  /// the paper argues is ill-suited to in-memory caches): the cache state is
  /// periodically checkpointed to bulk storage and the replacement restores
  /// it sequentially. Restores stream faster than throttled random refills,
  /// but arrive in storage order (no popularity preference, so hot keys wait
  /// like everyone else) and nothing serves the interim. Ignored when a
  /// backup type is set.
  bool checkpoint_restore = false;
  /// Sequential restore bandwidth from bulk storage (Mbps).
  double checkpoint_restore_mbps = 250.0;

  /// Fault injection: lose the backup node this long into the recovery
  /// (mid-warm-up compound failure). From that point the remaining hot data
  /// refills from the throttled back-end and uncovered hot traffic misses.
  std::optional<Duration> backup_loss_at;
  /// Fault injection: force-drain the backup's token buckets at this offset
  /// (models the backup having burned its credits on unrelated work).
  std::optional<Duration> token_drain_at;

  /// Observability (non-owning, may be null): traces recovery start/settle,
  /// mid-recovery backup loss and token exhaustion, and records the settle
  /// time on the `recovery/warmup_s` histogram.
  Obs* obs = nullptr;

  /// Resilience admission control over the interim, backend-bound traffic:
  /// when the uncovered load exceeds the backend's capacity, requests are
  /// shed cold-first (bounded by the shed budget) instead of queueing the
  /// back-end into collapse. nullopt (the default) disables shedding and
  /// keeps the legacy recovery curves bit-identical.
  std::optional<AdmissionConfig> admission;

  Duration epoch = Duration::Seconds(1);
  Duration horizon = Duration::Minutes(30);
  /// Target average latency; warm-up "finishes" when the running mean falls
  /// back within 1.05x of it (the paper's settling criterion).
  Duration target_mean = Duration::Micros(800);
  /// Extra hop when served via the backup.
  Duration backup_hop = Duration::Micros(250);

  LatencyModelParams latency;
};

struct RecoveryPoint {
  double t_seconds = 0.0;
  Duration mean;
  Duration p95;
  double warm_traffic_fraction = 0.0;  // accesses covered by the replacement
  /// Fraction of the affected traffic shed by admission control this epoch
  /// (0 unless RecoveryConfig::admission is set).
  double shed_fraction = 0.0;
};

struct RecoveryResult {
  std::vector<RecoveryPoint> series;
  /// First time the epoch mean settles within 1.05x target (horizon if never).
  Duration warmup_time;
  /// Request-weighted p95 latency over [0, warmup_time].
  Duration p95_during_recovery;
  Duration max_mean_latency;
  /// Backup hourly price (0 without backup).
  double backup_cost_per_hour = 0.0;
  /// Whether the backup exhausted its network tokens during warm-up.
  bool backup_tokens_exhausted = false;
  /// Whether the backup was lost mid-recovery (backup_loss_at fired).
  bool backup_lost = false;
  /// Peak per-epoch shed fraction (0 without admission control).
  double max_shed_fraction = 0.0;
};

RecoveryResult SimulateRecovery(const RecoveryConfig& config);

/// Figure 11(b)'s companion metric: idle time a burstable needs to accrue
/// enough network tokens to copy `data_gb` at peak rate (its feasible mean
/// time between failures as a recovery device).
Duration NetworkCreditEarnTime(const InstanceTypeSpec& burstable, double data_gb);

}  // namespace spotcache
