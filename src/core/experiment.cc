#include "src/core/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/cloud/spot_price_model.h"
#include "src/util/logging.h"
#include "src/workload/trace.h"

namespace spotcache {

std::string_view ToString(Approach a) {
  switch (a) {
    case Approach::kOdPeak:
      return "ODPeak";
    case Approach::kOdOnly:
      return "ODOnly";
    case Approach::kOdSpotSep:
      return "OD+Spot_Sep";
    case Approach::kOdSpotCdf:
      return "OD+Spot_CDF";
    case Approach::kPropNoBackup:
      return "Prop_NoBackup";
    case Approach::kProp:
      return "Prop";
  }
  return "?";
}

std::vector<Approach> AllApproaches() {
  return {Approach::kOdPeak,     Approach::kOdOnly,       Approach::kOdSpotSep,
          Approach::kOdSpotCdf,  Approach::kPropNoBackup, Approach::kProp};
}

ApproachTraits TraitsOf(Approach a) {
  ApproachTraits t;
  switch (a) {
    case Approach::kOdPeak:
      t.static_peak = true;
      break;
    case Approach::kOdOnly:
      break;
    case Approach::kOdSpotSep:
      t.uses_spot = true;
      t.our_spot_model = true;
      break;
    case Approach::kOdSpotCdf:
      t.uses_spot = true;
      t.hot_cold_mixing = true;
      break;
    case Approach::kPropNoBackup:
      t.uses_spot = true;
      t.our_spot_model = true;
      t.hot_cold_mixing = true;
      break;
    case Approach::kProp:
      t.uses_spot = true;
      t.our_spot_model = true;
      t.hot_cold_mixing = true;
      t.passive_backup = true;
      break;
  }
  return t;
}

std::unique_ptr<SpotFeaturePredictor> MakePredictor(Approach a) {
  const ApproachTraits traits = TraitsOf(a);
  if (!traits.uses_spot) {
    return nullptr;
  }
  if (traits.our_spot_model) {
    return std::make_unique<LifetimePredictor>();
  }
  return std::make_unique<CdfPredictor>();
}

std::string ValidateExperimentConfig(const ExperimentConfig& config) {
  if (std::string err = config.workload.Validate(); !err.empty()) {
    return err;
  }
  for (const double m : config.bid_multipliers) {
    if (!std::isfinite(m) || m <= 0.0) {
      return "bid_multipliers must all be positive and finite";
    }
  }
  if (config.substep <= Duration::Micros(0)) {
    return "substep must be positive";
  }
  if (!std::isfinite(config.reactive_threshold) ||
      config.reactive_threshold < 1.0) {
    return "reactive_threshold must be finite and >= 1 (it is a ratio of "
           "actual to predicted demand)";
  }
  if (config.revocation_cooldown < Duration::Micros(0)) {
    return "revocation_cooldown must be non-negative";
  }
  if (config.cluster.backup_type != nullptr) {
    if (std::string err = Validate(*config.cluster.backup_type); !err.empty()) {
      return err;
    }
  }
  if (std::string err = Validate(config.cluster.replacement_retry);
      !err.empty()) {
    return "cluster.replacement_retry: " + err;
  }
  if (config.resilience.enabled) {
    if (std::string err = ValidateResilienceConfig(config.resilience);
        !err.empty()) {
      return "resilience: " + err;
    }
  }
  return "";
}

size_t ExperimentResult::OptionIndex(std::string_view label) const {
  for (size_t i = 0; i < option_labels.size(); ++i) {
    if (option_labels[i] == label) {
      return i;
    }
  }
  return static_cast<size_t>(-1);
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  if (std::string err = ValidateExperimentConfig(config); !err.empty()) {
    throw std::invalid_argument("invalid experiment config: " + err);
  }
  const ApproachTraits traits = TraitsOf(config.approach);

  // --- Substrate: catalog, markets (traces sized to the run), provider.
  static const InstanceCatalog catalog = InstanceCatalog::Default();
  std::vector<SpotMarket> markets;
  if (traits.uses_spot) {
    // Traces start 7 days before the experiment so predictors have history
    // from slot 0, exactly like the paper's 7-day training prefix.
    markets = MakeEvaluationMarkets(
        catalog, Duration::Days(config.workload.days + 9), config.market_seed);
    if (!config.market_filter.empty()) {
      std::vector<SpotMarket> kept;
      for (auto& m : markets) {
        if (std::find(config.market_filter.begin(), config.market_filter.end(),
                      m.name) != config.market_filter.end()) {
          kept.push_back(std::move(m));
        }
      }
      markets = std::move(kept);
    }
  }
  CloudProvider provider(&catalog, std::move(markets), config.market_seed ^ 0x9e37);

  // --- Observability: one bundle per run, threaded through every component.
  std::unique_ptr<Obs> obs;
  if (config.obs.enabled) {
    obs = std::make_unique<Obs>();
    obs->tracer.set_enabled(config.obs.trace);
    provider.AttachObs(obs.get());
  }

  // --- Fault layer: schedule is a pure function of (seed, scenario).
  FaultInjector injector(FaultPlan::Build(config.fault_seed, config.fault));
  if (!injector.plan().empty()) {
    provider.AttachFaultInjector(&injector);
  }

  // --- Controller: options reference the provider-owned markets.
  std::vector<ProcurementOption> options =
      BuildOptions(catalog, provider.markets(), config.bid_multipliers);
  OptimizerConfig opt_config = config.optimizer;
  opt_config.mixing = (traits.hot_cold_mixing || !traits.uses_spot)
                          ? MixingPolicy::kMix
                          : MixingPolicy::kSeparate;
  GlobalController controller(
      ProcurementOptimizer(options, config.cluster.latency_model, opt_config),
      MakePredictor(config.approach));
  controller.SetRevocationCooldown(config.revocation_cooldown);
  controller.AttachObs(obs.get());

  ClusterConfig cluster_config = config.cluster;
  cluster_config.use_backup = traits.passive_backup;
  Cluster cluster(&provider, &controller.options(), cluster_config);
  cluster.AttachObs(obs.get());

  // --- Resilience layer (off by default; all consumers keep legacy behavior
  // bit-for-bit when it is absent).
  std::unique_ptr<ResilienceLayer> resilience;
  if (config.resilience.enabled) {
    resilience = std::make_unique<ResilienceLayer>(config.resilience);
    resilience->AttachObs(obs.get());
    cluster.AttachResilience(resilience.get());
    if (config.revocation_cooldown > Duration::Micros(0)) {
      // Escalating market cooldowns: the base cooldown is the policy's
      // initial delay, repeated storms on one option back off from there.
      RetryPolicyConfig cooldown = config.resilience.retry;
      cooldown.initial_delay = config.revocation_cooldown;
      cooldown.max_delay = std::max(cooldown.max_delay, cooldown.initial_delay);
      controller.EnableCooldownBackoff(cooldown, config.resilience.seed);
    }
  }

  // --- Workload.
  const WorkloadTrace trace = WorkloadTrace::GenerateDiurnal(
      config.workload.TraceConfig());
  const ZipfPopularity popularity(config.workload.NumKeys(),
                                  config.workload.zipf_theta);

  // The experiment clock starts 7 days into the market traces.
  const Duration warmup_offset = Duration::Days(7);
  provider.AdvanceTo(SimTime() + warmup_offset);

  ExperimentResult result;
  result.approach_name = std::string(ToString(config.approach));
  for (const auto& opt : controller.options()) {
    result.option_labels.push_back(opt.label);
  }

  // ODPeak's one-time plan, computed from the workload's true peaks.
  AllocationPlan static_plan;
  SlotContext static_context;
  if (traits.static_peak) {
    const double peak_rate = trace.PeakRate();
    const double peak_ws = trace.PeakWorkingSetGb();
    static_plan = controller.Plan(provider.now(), peak_rate, peak_ws, popularity,
                                  std::vector<int>(options.size(), 0));
    static_context = {peak_rate,
                      peak_ws,
                      std::min(popularity.KeyFractionForCoverage(
                                   opt_config.hot_coverage),
                               opt_config.alpha),
                      0.0,
                      popularity.AccessFraction(opt_config.alpha),
                      opt_config.alpha,
                      config.workload.read_fraction};
    static_context.hot_access_fraction =
        popularity.AccessFraction(static_context.hot_ws_fraction);
  }

  const Duration slot = config.optimizer.slot;
  const size_t substeps = std::max<int64_t>(1, slot / config.substep);
  double billed_so_far = 0.0;

  for (size_t s = 0; s < trace.slots(); ++s) {
    const SimTime slot_start = SimTime() + warmup_offset + slot * static_cast<int64_t>(s);
    const double lambda_act = trace.RateAt(s);
    const double ws_act = trace.WorkingSetGbAt(s);

    // Predict (cold start: persistence on the first slot).
    double lambda_hat = controller.PredictLambda();
    double ws_hat = controller.PredictWorkingSetGb();
    if (s == 0 || lambda_hat <= 0.0) {
      lambda_hat = lambda_act;
    }
    if (s == 0 || ws_hat <= 0.0) {
      ws_hat = ws_act;
    }

    AllocationPlan plan;
    SlotContext context;
    bool fallback = false;
    if (traits.static_peak) {
      plan = static_plan;
      context = static_context;
      context.lambda = lambda_act;
    } else {
      // Reactive element: if observation at slot start already exceeds the
      // prediction materially, re-plan with actuals (flash-crowd handling).
      if (lambda_act > lambda_hat * config.reactive_threshold) {
        lambda_hat = lambda_act;
      }
      if (ws_act > ws_hat * config.reactive_threshold) {
        ws_hat = ws_act;
      }
      plan = controller.Plan(slot_start, lambda_hat, ws_hat, popularity,
                             cluster.ExistingCounts());
      if (!plan.feasible) {
        // Availability fallback: the on-demand-only problem is always
        // feasible; never leave the tenant unprovisioned.
        SlotInputs inputs = controller.BuildInputs(slot_start, lambda_hat, ws_hat,
                                                   popularity,
                                                   cluster.ExistingCounts());
        for (size_t o = 0; o < options.size(); ++o) {
          if (!options[o].is_on_demand()) {
            inputs.available[o] = false;
          }
        }
        plan = controller.optimizer().Solve(inputs);
        fallback = true;
      }
      const SlotInputs ctx_inputs = controller.BuildInputs(
          slot_start, lambda_hat, ws_hat, popularity, cluster.ExistingCounts());
      context = {lambda_hat,
                 ws_hat,
                 ctx_inputs.hot_ws_fraction,
                 ctx_inputs.hot_access_fraction,
                 ctx_inputs.alpha_access_fraction,
                 opt_config.alpha,
                 config.workload.read_fraction};
    }

    if (obs != nullptr) {
      // The decision record: what the controller chose for this slot (after
      // any on-demand-only fallback), with the LP objective and the chosen
      // per-option placement fractions.
      int planned_instances = 0;
      for (const auto& item : plan.items) {
        planned_instances += item.count;
      }
      obs->tracer.Replan(slot_start, context.lambda, context.working_set_gb,
                         plan.feasible, plan.lp_objective, planned_instances,
                         fallback);
      for (const auto& item : plan.items) {
        obs->tracer.ReplanItem(slot_start, options[item.option].label,
                               item.count, item.x, item.y);
      }
    }

    const Cluster::ApplyResult applied = cluster.Apply(plan, context);
    result.bid_rejections += applied.bid_rejected;

    // Advance through the slot in sub-steps, aggregating performance.
    double affected = 0.0;
    double shed = 0.0;
    double mean_s = 0.0;
    double p95_max = 0.0;
    int revocations = 0;
    for (size_t sub = 1; sub <= substeps; ++sub) {
      const SimTime sub_end =
          slot_start + config.substep * static_cast<int64_t>(sub);
      const Cluster::StepPerf perf = cluster.Step(sub_end, lambda_act);
      affected += perf.affected_fraction;
      shed += perf.shed_fraction;
      mean_s += perf.mean_latency.seconds();
      p95_max = std::max(p95_max, perf.p95_latency.seconds());
      revocations += perf.revocations;
      // Feed observed revocations back so the controller can cool down the
      // affected markets (matters under correlated revocation storms).
      for (const size_t o : perf.revoked_options) {
        controller.NoteRevocation(o, sub_end);
      }
    }
    affected /= static_cast<double>(substeps);
    shed /= static_cast<double>(substeps);
    mean_s /= static_cast<double>(substeps);
    result.revocations += revocations;

    SlotRecord rec;
    rec.start = slot_start;
    rec.lambda = lambda_act;
    rec.lambda_hat = lambda_hat;
    rec.working_set_gb = ws_act;
    rec.counts = cluster.ExistingCounts();
    rec.backups = cluster.backup_count();
    rec.affected_fraction = affected;
    rec.shed_fraction = shed;
    rec.mean_latency = Duration::FromSecondsF(mean_s);
    rec.p95_latency = Duration::FromSecondsF(p95_max);
    rec.revocations = revocations;
    rec.cost = provider.ledger().Total() - billed_so_far;
    billed_so_far = provider.ledger().Total();
    result.slots.push_back(rec);

    SlotPerf slot_perf;
    slot_perf.slot_start = slot_start;
    slot_perf.arrival_rate = lambda_act;
    slot_perf.affected_fraction = affected;
    slot_perf.shed_fraction = shed;
    slot_perf.mean_latency = rec.mean_latency;
    slot_perf.p95_latency = rec.p95_latency;
    slot_perf.cost_dollars = rec.cost;
    result.tracker.Record(slot_perf);

    if (obs != nullptr) {
      MetricsRegistry& reg = obs->registry;
      reg.AddSample("slot/cost", slot_start, rec.cost);
      reg.AddSample("slot/lambda", slot_start, lambda_act);
      reg.AddSample("slot/affected_fraction", slot_start, affected);
      if (resilience != nullptr) {
        // Only sampled with the layer on, so legacy CSV exports stay
        // byte-identical when it is disabled.
        reg.AddSample("slot/shed_fraction", slot_start, shed);
      }
      reg.AddSample("slot/mean_latency_us", slot_start,
                    rec.mean_latency.seconds() * 1e6);
      reg.AddSample("slot/p95_latency_us", slot_start,
                    rec.p95_latency.seconds() * 1e6);
      int total_instances = 0;
      for (const int c : rec.counts) {
        total_instances += c;
      }
      reg.AddSample("slot/instances", slot_start,
                    static_cast<double>(total_instances));
      reg.AddSample("slot/backups", slot_start,
                    static_cast<double>(rec.backups));
      for (const auto& m : provider.markets()) {
        reg.AddSample("spot/price", slot_start, m.trace.PriceAt(slot_start),
                      {{"market", m.name}});
      }
    }

    controller.ObserveSlot(lambda_act, ws_act);
  }

  cluster.Shutdown();
  provider.FinalizeBilling();
  // Attribute the final terminations' charges to the last slot.
  if (!result.slots.empty()) {
    result.slots.back().cost += provider.ledger().Total() - billed_so_far;
  }

  result.total_cost = provider.ledger().Total();
  result.od_cost = provider.ledger().TotalFor(CostCategory::kOnDemand);
  result.spot_cost = provider.ledger().TotalFor(CostCategory::kSpot);
  result.backup_cost = provider.ledger().TotalFor(CostCategory::kBurstableBackup);
  result.faults = injector.counters();
  result.tracker.RecordFaults(result.faults);
  result.launch_failures = cluster.total_launch_failures();
  result.failed_replacements = cluster.failed_replacements();

  if (obs != nullptr) {
    // Publish the run summary (slo/* gauges + fault/* counters), then export.
    result.tracker.PublishTo(&obs->registry);
    result.trace_jsonl = ToJsonl(obs->tracer);
    result.metrics_csv = ToCsvTimeSeries(obs->registry);
    result.metrics_prometheus = ToPrometheusText(obs->registry);
    if (!config.obs.jsonl_path.empty()) {
      WriteStringToFile(config.obs.jsonl_path, result.trace_jsonl);
    }
    if (!config.obs.csv_path.empty()) {
      WriteStringToFile(config.obs.csv_path, result.metrics_csv);
    }
    if (!config.obs.prometheus_path.empty()) {
      WriteStringToFile(config.obs.prometheus_path, result.metrics_prometheus);
    }
  }
  return result;
}

}  // namespace spotcache
