#include "src/core/system.h"

#include <algorithm>
#include <stdexcept>

#include "src/cloud/spot_price_model.h"

namespace spotcache {

SpotCacheSystem::SpotCacheSystem(const Config& config)
    : config_(config),
      catalog_(InstanceCatalog::Default()),
      provider_(&catalog_,
                TraitsOf(config.approach).uses_spot
                    ? MakeEvaluationMarkets(catalog_, config.market_horizon,
                                            config.seed)
                    : std::vector<SpotMarket>{},
                config.seed ^ 0xc10d),
      popularity_(config.num_keys, config.zipf_theta) {
  const ApproachTraits traits = TraitsOf(config.approach);
  OptimizerConfig opt_config = config.optimizer;
  opt_config.mixing = (traits.hot_cold_mixing || !traits.uses_spot)
                          ? MixingPolicy::kMix
                          : MixingPolicy::kSeparate;
  std::vector<ProcurementOption> options =
      BuildOptions(catalog_, provider_.markets(), config.bid_multipliers);
  controller_ = std::make_unique<GlobalController>(
      ProcurementOptimizer(std::move(options), config.cluster.latency_model,
                           opt_config),
      MakePredictor(config.approach));
  ClusterConfig cluster_config = config.cluster;
  cluster_config.use_backup = traits.passive_backup;
  cluster_ = std::make_unique<Cluster>(&provider_, &controller_->options(),
                                       cluster_config);
  if (config.obs != nullptr) {
    provider_.AttachObs(config.obs);
    controller_->AttachObs(config.obs);
    cluster_->AttachObs(config.obs);
    router_.AttachObs(config.obs);
  }
  if (config.resilience.enabled) {
    const std::string err = ValidateResilienceConfig(config.resilience);
    if (!err.empty()) {
      throw std::invalid_argument("invalid resilience config: " + err);
    }
    resilience_ = std::make_unique<ResilienceLayer>(config.resilience);
    resilience_->AttachObs(config.obs);
    cluster_->AttachResilience(resilience_.get());
  }
}

void SpotCacheSystem::AdvanceSlot(double observed_lambda,
                                  double observed_working_set_gb) {
  controller_->ObserveSlot(observed_lambda, observed_working_set_gb);
  double lambda_hat = controller_->PredictLambda();
  double ws_hat = controller_->PredictWorkingSetGb();
  if (lambda_hat <= 0.0) {
    lambda_hat = observed_lambda;
  }
  if (ws_hat <= 0.0) {
    ws_hat = observed_working_set_gb;
  }
  last_lambda_ = lambda_hat;

  AllocationPlan plan = controller_->Plan(provider_.now(), lambda_hat, ws_hat,
                                          popularity_, cluster_->ExistingCounts());
  if (!plan.feasible) {
    SlotInputs inputs = controller_->BuildInputs(
        provider_.now(), lambda_hat, ws_hat, popularity_,
        cluster_->ExistingCounts());
    for (size_t o = 0; o < controller_->options().size(); ++o) {
      if (!controller_->options()[o].is_on_demand()) {
        inputs.available[o] = false;
      }
    }
    plan = controller_->optimizer().Solve(inputs);
  }

  const SlotInputs ctx = controller_->BuildInputs(provider_.now(), lambda_hat,
                                                  ws_hat, popularity_,
                                                  cluster_->ExistingCounts());
  cluster_->Apply(plan, {lambda_hat, ws_hat, ctx.hot_ws_fraction,
                         ctx.hot_access_fraction, ctx.alpha_access_fraction,
                         controller_->optimizer().config().alpha});
  cluster_->Step(provider_.now() + controller_->optimizer().config().slot,
                 lambda_hat);
  SyncDataPlane();
}

void SpotCacheSystem::SyncDataPlane() {
  const auto& options = controller_->options();
  const auto& holdings = cluster_->holdings();
  const AllocationPlan& plan = cluster_->plan();

  // Drop nodes for instances that died (publishing their final counts).
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    const Instance* inst = provider_.Get(it->first);
    if (inst == nullptr || !inst->alive()) {
      it->second->FlushObs();
      router_.RemoveNode(it->first);
      if (resilience_ != nullptr) {
        resilience_->Forget(it->first);
      }
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }

  // Upsert a node and weights for every held instance. Pre-size the router's
  // maps for the whole fleet up front so the upsert loop never rehashes.
  size_t fleet = 0;
  for (const auto& held : holdings) {
    fleet += held.size();
  }
  router_.Reserve(fleet);
  for (size_t o = 0; o < holdings.size(); ++o) {
    const AllocationItem* item = plan.ItemFor(o);
    const double n = item != nullptr && item->count > 0
                         ? static_cast<double>(item->count)
                         : 1.0;
    const double hot_w = item != nullptr ? item->x / n : 0.0;
    const double cold_w = item != nullptr ? item->y / n : 0.0;
    for (InstanceId id : holdings[o]) {
      const Instance* inst = provider_.Get(id);
      if (inst == nullptr || !inst->alive()) {
        continue;
      }
      if (nodes_.find(id) == nodes_.end()) {
        auto node = std::make_unique<CacheNode>(
            id,
            inst->type->capacity.ram_gb * config_.cluster.ram_usable_fraction,
            options[o].label);
        // Expected residency: the node fills to capacity under steady GET
        // traffic, but never holds more than the workload's key population.
        // The eager reservation is capped so an outsized instance type cannot
        // commit hundreds of MB per node before any traffic arrives.
        constexpr size_t kMaxEagerReserveItems = size_t{1} << 22;
        const size_t fit_items =
            node->capacity_bytes() / std::max<uint32_t>(1, config_.value_bytes);
        node->ReserveItems(std::min(
            {fit_items, static_cast<size_t>(config_.num_keys),
             kMaxEagerReserveItems}));
        node->AttachObs(config_.obs);
        nodes_.emplace(id, std::move(node));
      }
      router_.UpsertNode(id, hot_w, cold_w);
    }
  }

  // Publish the slot's cache activity onto the shared fleet counters.
  for (auto& [id, node] : nodes_) {
    node->FlushObs();
  }

  // Map each spot-held node to a backup (round-robin over the backup fleet).
  const auto& backup_ids = cluster_->backup_ids();
  size_t rr = 0;
  for (size_t o = 0; o < holdings.size(); ++o) {
    if (options[o].is_on_demand()) {
      continue;
    }
    for (InstanceId id : holdings[o]) {
      if (backup_ids.empty()) {
        router_.ClearBackup(id);
      } else {
        router_.SetBackup(id, backup_ids[rr++ % backup_ids.size()]);
      }
    }
  }
}

CacheNode* SpotCacheSystem::NodeFor(InstanceId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

bool SpotCacheSystem::IsSpotInstance(InstanceId id) const {
  const Instance* inst = provider_.Get(id);
  return inst != nullptr && inst->purchase == PurchaseKind::kSpot;
}

CacheResponse SpotCacheSystem::Get(KeyId key) {
  ++gets_;
  partitioner_.Observe(key);
  const bool hot = partitioner_.IsHot(key);
  if (resilience_ != nullptr) {
    return GetWithLadder(key, hot);
  }
  CacheResponse resp;
  const RouteResult target = router_.Route(key, hot);
  const LatencyModel& model = config_.cluster.latency_model;
  if (!target.ok()) {
    // RouteError::kNoRoutableNode: straight to the back-end.
    ++misses_;
    resp.hit = false;
    resp.served_by = ServedBy::kBackend;
    resp.latency = backend_.Read(last_lambda_) + model.params().base_latency;
    return resp;
  }
  CacheNode* node = NodeFor(target.node());
  if (node != nullptr && node->Get(key)) {
    ++hits_;
    resp.hit = true;
    resp.served_by = ServedBy::kCacheNode;
    const double share =
        router_.HotWeightOf(target.node()) + router_.ColdWeightOf(target.node());
    const Instance* inst = provider_.Get(target.node());
    resp.latency =
        model.HitLatency(last_lambda_ * share, inst->type->capacity).mean;
    return resp;
  }
  // Miss: read through the back-end and fill the node.
  ++misses_;
  resp.hit = false;
  resp.served_by = ServedBy::kBackend;
  resp.latency = backend_.Read(last_lambda_) + model.params().base_latency;
  if (node != nullptr) {
    node->Set(key, config_.value_bytes);
  }
  return resp;
}

bool SpotCacheSystem::AdmitBackend(bool hot) {
  // Overload ratio: the observed read-through rate (request rate scaled by
  // the running miss fraction) against the configured backend capacity. The
  // +1 smoothing keeps the estimate defined before any request completes.
  const AdmissionConfig& cfg = resilience_->config().admission;
  if (cfg.backend_capacity_ops <= 0.0) {
    return true;
  }
  const double miss_fraction = static_cast<double>(misses_ + 1) /
                               static_cast<double>(gets_ + 1);
  const double ratio = last_lambda_ * miss_fraction / cfg.backend_capacity_ops;
  return resilience_->admission().Admit(hot, ratio);
}

CacheResponse SpotCacheSystem::GetWithLadder(KeyId key, bool hot) {
  const SimTime now = provider_.now();
  const LatencyModel& model = config_.cluster.latency_model;
  CacheResponse resp;
  const RouteResult target = router_.Route(key, hot);

  // Rung 1: primary cache node, gated by its circuit breaker. An open
  // breaker's first allowed request is its half-open probe.
  if (target.ok() && resilience_->AllowRequest(target.node(), now)) {
    CacheNode* node = NodeFor(target.node());
    if (node != nullptr && node->Get(key)) {
      ++hits_;
      const double share = router_.HotWeightOf(target.node()) +
                           router_.ColdWeightOf(target.node());
      const Instance* inst = provider_.Get(target.node());
      const NodeLatency lat =
          model.HitLatency(last_lambda_ * share, inst->type->capacity);
      resp.hit = true;
      resp.served_by = ServedBy::kCacheNode;
      resp.latency = lat.mean;
      resilience_->RecordOutcome(
          target.node(), now,
          lat.saturated ? HealthOutcome::kTimeout : HealthOutcome::kOk);
      resilience_->CountLadderHop(LadderRung::kPrimary);
      return resp;
    }
    if (node != nullptr) {
      // A clean miss is a healthy answer from the primary; the read-through
      // (and fill) still has to win a backend admission slot.
      resilience_->RecordOutcome(target.node(), now, HealthOutcome::kOk);
      if (AdmitBackend(hot)) {
        ++misses_;
        resp.hit = false;
        resp.served_by = ServedBy::kBackend;
        resp.latency = backend_.Read(last_lambda_) + model.params().base_latency;
        node->Set(key, config_.value_bytes);
        resilience_->CountLadderHop(LadderRung::kBackend);
        return resp;
      }
      ++dropped_;
      resp.hit = false;
      resp.served_by = ServedBy::kDropped;
      resp.latency = Duration();
      resilience_->CountLadderHop(LadderRung::kShed);
      return resp;
    }
    // Routed to an instance the data plane has no node for: hard failure.
    resilience_->RecordOutcome(target.node(), now, HealthOutcome::kError);
  }

  // Rung 2: passive backup. Hot keys on spot primaries are mirrored to a
  // backup node; serve from it when the primary rung is unavailable.
  if (target.ok() && hot) {
    const auto backup = router_.BackupFor(target.node());
    if (backup && resilience_->AllowRequest(*backup, now)) {
      ++hits_;
      resp.hit = true;
      resp.served_by = ServedBy::kBackup;
      resp.latency =
          model.params().base_latency + config_.cluster.backup_hop_latency;
      resilience_->RecordOutcome(*backup, now, HealthOutcome::kOk);
      resilience_->RecordOutcome(target.node(), now, HealthOutcome::kServedByBackup);
      resilience_->CountLadderHop(LadderRung::kBackup);
      return resp;
    }
  }

  // Rung 3: straight to the back-end, admission-gated (cold sheds first).
  if (AdmitBackend(hot)) {
    ++misses_;
    resp.hit = false;
    resp.served_by = ServedBy::kBackend;
    resp.latency = backend_.Read(last_lambda_) + model.params().base_latency;
    resilience_->CountLadderHop(LadderRung::kBackend);
    return resp;
  }

  // Rung 4: shed. The request is dropped before reaching the back-end.
  ++dropped_;
  resp.hit = false;
  resp.served_by = ServedBy::kDropped;
  resp.latency = Duration();
  resilience_->CountLadderHop(LadderRung::kShed);
  return resp;
}

CacheResponse SpotCacheSystem::Put(KeyId key, uint32_t value_bytes) {
  ++sets_;
  partitioner_.Observe(key);
  const bool hot = partitioner_.IsHot(key);
  CacheResponse resp;
  resp.served_by = ServedBy::kCacheNode;
  const RouteResult target = router_.Route(key, hot);
  // With resilience on, a breaker-open primary is skipped: the write still
  // reaches the back-end (write-through), it just doesn't populate the node.
  const bool primary_ok =
      target.ok() && (resilience_ == nullptr ||
                      resilience_->AllowRequest(target.node(), provider_.now()));
  if (!primary_ok && resilience_ != nullptr) {
    resp.served_by = ServedBy::kBackend;
  }
  if (primary_ok) {
    CacheNode* node = NodeFor(target.node());
    if (node != nullptr) {
      node->Set(key, value_bytes);
    }
    // Hot writes on spot primaries are also mirrored to the passive backup;
    // the mirror is asynchronous (the paper sends updates to backup nodes in
    // the background) so it adds no client-visible latency here, and the
    // backup fleet's capacity accounting lives in the cluster layer.
  }
  // Write-through.
  resp.latency = backend_.Write(last_lambda_) +
                 config_.cluster.latency_model.params().base_latency;
  return resp;
}

SpotCacheSystem::Stats SpotCacheSystem::GetStats() const {
  Stats s;
  s.gets = gets_;
  s.sets = sets_;
  s.hits = hits_;
  s.misses = misses_;
  s.dropped = dropped_;
  s.hit_rate = gets_ > 0 ? static_cast<double>(hits_) / gets_ : 0.0;
  s.nodes = static_cast<int>(nodes_.size());
  s.backups = cluster_->backup_count();
  s.revocations = cluster_->total_revocations();
  s.total_cost = provider_.ledger().Total();
  return s;
}

}  // namespace spotcache
