// Cluster actuation and slot-level performance accounting.
//
// Materializes each AllocationPlan into provider instances (launch / keep /
// terminate per option), maintains the burstable backup fleet for hot data on
// spot, reacts to revocation warnings by launching replacements, and converts
// the cluster state within each sub-step into the analytic latency / affected-
// traffic numbers the experiment harness records.
//
// Long-horizon experiments run at sub-step granularity (default 5 minutes);
// the key-level recovery dynamics of Figure 11 live in recovery_sim.h.

#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cloud/cloud_provider.h"
#include "src/obs/obs.h"
#include "src/opt/procurement.h"
#include "src/resilience/resilience.h"
#include "src/sim/latency_model.h"
#include "src/workload/zipf.h"

namespace spotcache {

struct ClusterConfig {
  /// Maintain a passive burstable backup of hot-on-spot content (Prop).
  bool use_backup = false;
  /// Burstable type used for backups; null selects t2.medium.
  const InstanceTypeSpec* backup_type = nullptr;
  LatencyModel latency_model;
  /// Extra hop latency when a request is served by the backup during warm-up.
  Duration backup_hop_latency = Duration::Micros(250);
  /// Effective warm-from-back-end rate (Mbps): the back-end must not be
  /// flattened by recovery traffic, so warm-up reads are throttled.
  double backend_copy_mbps = 100.0;
  /// Fraction of line rate a warm-up copy stream achieves.
  double copy_efficiency = 0.7;
  double ram_usable_fraction = 0.85;
  /// Governs retries of failed replacement launches (injected transient
  /// outages). Without an attached ResilienceLayer only `initial_delay`
  /// matters — the shard stays degraded that long and the next
  /// reconciliation re-provisions, exactly the old fixed-timer behavior.
  /// With the layer attached, in-step retries follow the full policy
  /// (capped exponential backoff + decorrelated jitter, bounded attempts).
  RetryPolicyConfig replacement_retry;
};

/// Demand context attached to an applied plan.
struct SlotContext {
  double lambda = 0.0;          // planned arrival rate, ops/s
  double working_set_gb = 0.0;  // M-hat
  double hot_ws_fraction = 0.0;
  double hot_access_fraction = 0.0;
  double alpha_access_fraction = 1.0;
  double alpha = 1.0;
  /// GET share of the request stream; writes go through to the back-end
  /// (paper: read-heavy focus, write-through semantics).
  double read_fraction = 1.0;
};

class Cluster {
 public:
  Cluster(CloudProvider* provider, const std::vector<ProcurementOption>* options,
          ClusterConfig config);

  /// Reconciles holdings with `plan` at the provider's current time and
  /// resizes the backup fleet. Returns how many spot requests were rejected
  /// outright (bid below current price at request time).
  struct ApplyResult {
    int launched = 0;
    int terminated = 0;
    int bid_rejected = 0;
    int backup_count = 0;
    /// Launches rejected by an injected launch outage (not bid failures).
    int launch_failed = 0;
  };
  ApplyResult Apply(const AllocationPlan& plan, const SlotContext& context);

  /// Advances the provider to `to`, processing ready/warning/revocation
  /// events and updating degradation windows. Returns performance over the
  /// elapsed interval under `lambda_actual`.
  struct StepPerf {
    double affected_fraction = 0.0;  // of requests, failure-degraded
    Duration mean_latency;
    Duration p95_latency;
    double hit_fraction = 1.0;
    /// Fraction of arrivals shed by admission control (0 without an attached
    /// ResilienceLayer): backend-bound overload refused cold-first.
    double shed_fraction = 0.0;
    int revocations = 0;
    bool saturated = false;
    /// Options that lost an instance to revocation this step (with
    /// multiplicity) — feedback for the controller's market cooldown.
    std::vector<size_t> revoked_options;
  };
  StepPerf Step(SimTime to, double lambda_actual);

  /// Alive instance count per option (the optimizer's N_t for next slot).
  std::vector<int> ExistingCounts() const;

  const AllocationPlan& plan() const { return plan_; }
  const SlotContext& context() const { return context_; }
  int backup_count() const { return static_cast<int>(backups_.size()); }
  int total_revocations() const { return total_revocations_; }
  int total_bid_rejections() const { return total_bid_rejections_; }
  /// Fault-path bookkeeping (all zero without an attached fault injector).
  int total_launch_failures() const { return total_launch_failures_; }
  int backup_losses() const { return backup_losses_; }
  int failed_replacements() const { return failed_replacements_; }

  /// Terminates everything (end of experiment).
  void Shutdown();

  /// Attaches observability (null detaches): Apply updates launch/terminate
  /// counters and the backup-fleet gauge; HandleRevocation traces warm-up
  /// windows with the paper's Fig 4 case labels (1a / 1b / 2).
  void AttachObs(Obs* obs);

  /// Attaches the resilience layer (null detaches). When attached, failed
  /// replacement launches are retried *within* Step under the
  /// `replacement_retry` policy (gated by a per-option circuit breaker), and
  /// backend-bound overload is shed cold-first through admission control.
  /// When detached, behavior is bit-identical to the pre-resilience model.
  void AttachResilience(ResilienceLayer* layer);

  /// Replacement retries still pending (tests/diagnostics).
  size_t pending_replacements() const { return pending_.size(); }

  /// Instance ids held per option (parallel to the option vector).
  const std::vector<std::vector<InstanceId>>& holdings() const {
    return holdings_;
  }
  const std::vector<InstanceId>& backup_ids() const { return backups_; }

 private:
  struct Degradation {
    SimTime until;
    double traffic_fraction = 0.0;  // of all arrivals
    Duration served_latency;        // latency those requests experience
    /// Where the degraded traffic lands (drives admission shedding): backend
    /// entries are sheddable, backup-served ones are not.
    bool backend = false;
    /// Cold-pool traffic (shed before hot when the backend overloads).
    bool cold = false;
  };

  /// One failed replacement launch awaiting an in-step retry (only populated
  /// with an attached ResilienceLayer).
  struct PendingReplacement {
    size_t option = 0;
    const InstanceTypeSpec* type = nullptr;
    std::string tag;
    uint64_t op_id = 0;  // revoked instance id: keys the retry schedule
    int attempts = 0;
    SimTime next_attempt;
    double hot_gb = 0.0;
    double cold_gb = 0.0;
    double hot_traffic = 0.0;
    double cold_traffic = 0.0;
  };

  const InstanceTypeSpec& BackupType() const;
  double TrafficWeight(const AllocationItem& item) const;
  void HandleWarning(const Instance& inst);
  void HandleRevocation(const Instance& inst);
  /// Pushes the interim-gap and warm-up degradation windows for a replacement
  /// of `type` becoming ready at `ready`, and emits the warm-up trace.
  void ScheduleWarmup(const InstanceTypeSpec& type, uint64_t inst_id,
                      const char* warmup_case, double hot_gb, double cold_gb,
                      double hot_traffic, double cold_traffic, SimTime now,
                      SimTime ready);
  /// Marks a shard degraded until the next retry horizon after a failed
  /// replacement launch.
  void PushFailureDegradations(SimTime until, double hot_traffic,
                               double cold_traffic);
  /// Retries pending replacement launches due by `now` (resilience only).
  void RetryPendingReplacements(SimTime now);
  /// Copy rate (Mbps) available for warming from the backup fleet at `now`
  /// over an estimated window; consumes backup network tokens.
  double BackupCopyMbps(SimTime from, Duration window, double demand_mbps);

  CloudProvider* provider_;
  const std::vector<ProcurementOption>* options_;
  ClusterConfig config_;

  AllocationPlan plan_;
  SlotContext context_;
  std::vector<std::vector<InstanceId>> holdings_;  // per option
  std::vector<InstanceId> backups_;
  std::vector<InstanceId> replacements_;
  std::unordered_map<InstanceId, InstanceId> replacement_for_;  // spot -> repl
  std::vector<Degradation> degradations_;
  std::vector<PendingReplacement> pending_;
  int total_revocations_ = 0;
  int total_bid_rejections_ = 0;
  int step_revocations_ = 0;
  int total_launch_failures_ = 0;
  int backup_losses_ = 0;
  int failed_replacements_ = 0;
  std::vector<size_t> step_revoked_options_;

  ResilienceLayer* resilience_ = nullptr;
  RetryPolicy replacement_policy_;

  Obs* obs_ = nullptr;
  Counter* launched_ = nullptr;
  Counter* terminated_ = nullptr;
  Counter* bid_rejected_ = nullptr;
  Counter* launch_failed_ = nullptr;
  Gauge* backups_gauge_ = nullptr;
};

}  // namespace spotcache
