#include "src/core/recovery_sim.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/cloud/burstable.h"
#include "src/workload/zipf.h"

namespace spotcache {

namespace {
constexpr double kBytesPerGb = 1024.0 * 1024.0 * 1024.0;

double GbToMegabits(double gb) { return gb * kBytesPerGb * 8.0 / 1e6; }

double MbpsToGbPerSecond(double mbps) { return mbps * 1e6 / 8.0 / kBytesPerGb; }
}  // namespace

RecoveryResult SimulateRecovery(const RecoveryConfig& config) {
  static const InstanceCatalog catalog = InstanceCatalog::Default();
  const InstanceTypeSpec* repl = config.replacement_type != nullptr
                                     ? config.replacement_type
                                     : catalog.Find("m4.xlarge");

  RecoveryResult result;
  const LatencyModel model(config.latency);

  const uint64_t total_keys = std::max<uint64_t>(
      1, static_cast<uint64_t>(config.data_gb * kBytesPerGb / config.item_bytes));
  const ZipfPopularity popularity(total_keys, config.zipf_theta);
  const double hot_key_fraction =
      std::clamp(config.hot_gb / config.data_gb, 0.0, 1.0);
  const double hot_traffic = popularity.AccessFraction(hot_key_fraction);
  const double cold_gb = config.data_gb - config.hot_gb;

  std::optional<BurstableState> backup_state;
  if (config.backup_type != nullptr) {
    result.backup_cost_per_hour = config.backup_type->od_price_per_hour;
    if (config.backup_type->is_burstable()) {
      backup_state.emplace(*config.backup_type, config.initial_credit_fraction);
    }
  }
  const bool has_backup = config.backup_type != nullptr;

  Obs* obs = config.obs;
  if (obs != nullptr) {
    obs->registry.GetCounter("recovery/runs")->Increment();
    obs->tracer.Custom(
        SimTime(), "recovery_start",
        {{"data_gb", EventTracer::JsonNumber(config.data_gb)},
         {"hot_gb", EventTracer::JsonNumber(config.hot_gb)},
         {"backup",
          EventTracer::JsonString(has_backup ? config.backup_type->name : "")},
         {"replacement_delay_s",
          EventTracer::JsonNumber(config.replacement_delay.seconds())}});
  }
  bool exhaustion_traced = false;

  // Warm-up frontiers, in popularity (MRU) order within each class. The hot
  // prefix streams from the backup; the cold suffix refills from the
  // (throttled) back-end in parallel. Without a backup everything refills
  // from the back-end through a single frontier. In separation mode the hot
  // prefix never left memory.
  double hot_warmed_gb = config.separation_mode ? config.hot_gb : 0.0;
  double cold_warmed_gb = 0.0;
  const bool backup_warms = has_backup && !config.separation_mode;
  // Fault-injection state: the backup can die or lose its tokens mid-warmup.
  bool backup_alive = true;
  bool tokens_drained = false;

  const Duration miss_latency =
      config.latency.base_latency + config.latency.miss_penalty;

  // Latency samples over the *hot* affected content (the traffic the backup
  // exists to protect) accumulated until settling, for the recovery p95.
  std::vector<std::pair<double, double>> recovery_mixture;
  bool settled = false;
  result.warmup_time = config.horizon;

  const double epoch_s = config.epoch.seconds();
  const double repl_mbps = repl->capacity.net_mbps * config.copy_efficiency;

  for (SimTime t; t < SimTime() + config.horizon; t += config.epoch) {
    const SimTime t_end = t + config.epoch;
    const bool repl_ready = t >= SimTime() + config.replacement_delay;

    // --- Injected faults due this epoch.
    if (config.backup_loss_at.has_value() && backup_alive &&
        t >= SimTime() + *config.backup_loss_at) {
      backup_alive = false;
      result.backup_lost = has_backup;
      if (obs != nullptr && has_backup) {
        obs->registry.GetCounter("recovery/backup_losses")->Increment();
        obs->tracer.BackupLoss(t, 0);
      }
    }
    if (config.token_drain_at.has_value() && !tokens_drained && backup_state &&
        t >= SimTime() + *config.token_drain_at) {
      backup_state->Drain(t);
      tokens_drained = true;
      if (obs != nullptr && !exhaustion_traced) {
        exhaustion_traced = true;
        obs->registry.GetCounter("recovery/token_exhaustions")->Increment();
        obs->tracer.TokenExhaustion(t, 0, "recovery");
      }
    }
    const bool backup_ok = backup_warms && backup_alive;

    // --- Copy progress this epoch (two parallel streams).
    double backup_copy_mbps = 0.0;
    if (repl_ready) {
      if (backup_ok && hot_warmed_gb < config.hot_gb) {
        double src_mbps;
        if (backup_state) {
          src_mbps = backup_state->RunNetwork(
              t, t_end, repl_mbps / config.copy_efficiency);
          if (src_mbps <= config.backup_type->baseline_net_mbps * 1.001 &&
              config.backup_type->baseline_net_mbps <
                  config.backup_type->capacity.net_mbps) {
            result.backup_tokens_exhausted = true;
          }
        } else {
          src_mbps = config.backup_type->capacity.net_mbps;
        }
        backup_copy_mbps = std::min(repl_mbps, src_mbps * config.copy_efficiency);
        hot_warmed_gb = std::min(
            config.hot_gb,
            hot_warmed_gb + MbpsToGbPerSecond(backup_copy_mbps) * epoch_s);
      }
      // Back-end stream: cold data (or, without a backup, the single frontier
      // that must also cover the hot prefix first).
      const double backend_gbps = MbpsToGbPerSecond(
          std::min(config.backend_copy_mbps, repl->capacity.net_mbps));
      if (backup_ok || config.separation_mode) {
        cold_warmed_gb =
            std::min(cold_gb, cold_warmed_gb + backend_gbps * epoch_s);
      } else if (config.checkpoint_restore) {
        // Checkpoint restore streams the shard in storage order: hot and
        // cold progress proportionally to their sizes (no popularity
        // preference), at the sequential restore rate.
        const double restore_gbps = MbpsToGbPerSecond(
            std::min(config.checkpoint_restore_mbps, repl->capacity.net_mbps));
        const double hot_share = config.hot_gb / config.data_gb;
        hot_warmed_gb = std::min(
            config.hot_gb, hot_warmed_gb + restore_gbps * hot_share * epoch_s);
        cold_warmed_gb = std::min(
            cold_gb, cold_warmed_gb + restore_gbps * (1.0 - hot_share) * epoch_s);
      } else {
        // No backup: back-end refills hot first, then cold.
        if (hot_warmed_gb < config.hot_gb) {
          hot_warmed_gb =
              std::min(config.hot_gb, hot_warmed_gb + backend_gbps * epoch_s);
        } else {
          cold_warmed_gb =
              std::min(cold_gb, cold_warmed_gb + backend_gbps * epoch_s);
        }
      }
    }

    // --- Traffic decomposition. The warm-up streams scan their class in
    // storage order, which is uncorrelated with instantaneous popularity
    // *within* a class, so covered traffic grows linearly with copied bytes
    // inside each class; the skew acts through the hot/cold traffic split
    // (F(hot) vs 1-F(hot)), which is exactly the cross-skew effect Figure
    // 11(b) reports.
    const double hot_progress =
        config.hot_gb > 0.0 ? hot_warmed_gb / config.hot_gb : 1.0;
    const double hot_covered = hot_traffic * hot_progress;
    const double cold_progress = cold_gb > 0.0 ? cold_warmed_gb / cold_gb : 1.0;
    const double cold_covered = (1.0 - hot_traffic) * cold_progress;
    const double covered = repl_ready ? hot_covered + cold_covered : 0.0;

    double to_repl = covered;
    double uncovered_hot = std::max(0.0, hot_traffic - hot_covered);
    if (config.separation_mode) {
      // Hot content never left memory: served at normal latency regardless.
      to_repl = std::max(covered, hot_traffic);
      uncovered_hot = 0.0;
    }
    const double uncovered_cold =
        std::max(0.0, 1.0 - hot_traffic - (repl_ready ? cold_covered : 0.0));

    // First-touch requests to uncopied hot items go to the backup (when one
    // exists); everything else uncovered goes to the back-end.
    double to_backup = 0.0;
    double to_backend = uncovered_cold;
    if (backup_ok) {
      to_backup = uncovered_hot * (repl_ready ? 1.0 : 1.0);
    } else {
      to_backend += uncovered_hot;
    }

    // Admission control over the backend-bound interim stream: when the
    // uncovered load exceeds the backend's capacity, shed cold-first within
    // the shed budget. Shed requests are dropped (they leave the latency
    // mixture) and reported per epoch as shed_fraction.
    double shed_fraction = 0.0;
    if (config.admission.has_value() && to_backend > 0.0) {
      const AdmissionController admit(*config.admission);
      const double cold_bound = uncovered_cold;
      const double hot_bound = to_backend - uncovered_cold;
      const ShedSplit split = admit.PlanShed(
          config.arrival_rate * to_backend, config.arrival_rate,
          config.arrival_rate * hot_bound, config.arrival_rate * cold_bound);
      const double shed_cold = cold_bound * split.cold;
      const double shed_hot = hot_bound * split.hot;
      to_backend -= shed_cold + shed_hot;
      uncovered_hot -= shed_hot;
      shed_fraction = shed_cold + shed_hot;
      result.max_shed_fraction = std::max(result.max_shed_fraction, shed_fraction);
    }

    // --- Latency mixture (all affected traffic) and the hot-only mixture.
    std::vector<std::pair<double, double>> mixture;
    std::vector<std::pair<double, double>> hot_mixture;
    if (to_repl > 0.0) {
      const NodeLatency nl =
          model.HitLatency(config.arrival_rate * to_repl, repl->capacity);
      mixture.push_back({nl.mean.seconds(), to_repl * 0.95});
      mixture.push_back({nl.p95.seconds(), to_repl * 0.05});
      const double hot_part = config.separation_mode ? hot_traffic : hot_covered;
      if (hot_part > 0.0) {
        hot_mixture.push_back({nl.mean.seconds(), hot_part * 0.95});
        hot_mixture.push_back({nl.p95.seconds(), hot_part * 0.05});
      }
    }
    if (to_backup > 0.0) {
      // Nearly every request to a not-yet-copied hot item is the first touch
      // of that item (items vastly outnumber per-epoch requests), so the
      // whole uncovered-hot stream lands on the backup. The backup serves up
      // to 90% of its *effective* CPU (token-governed for burstables); the
      // excess spills to the back-end - this is where an underpowered
      // m3.medium backup falls apart while a bursting t2.medium keeps up.
      const double load = config.arrival_rate * to_backup;
      ResourceVector backup_cap = config.backup_type->capacity;
      double net_rate_cap = std::max(load, 1.0);  // ops/s the NIC can carry
      if (backup_state) {
        const double demand_vcpus =
            load / config.latency.service_rate_per_vcpu * 1.25;
        backup_cap.vcpus =
            std::max(0.05, backup_state->RunCpu(t, t_end, demand_vcpus));
        // Serving responses drains the same network tokens the copy stream
        // uses; a long interim on a small burstable runs the bucket dry and
        // throttles serving toward the baseline (the scenario-B caveat).
        // Effective per-response wire cost, consistent with the phi model
        // (pipelined/batched responses, not the raw stored item size).
        const double wire_bytes = config.latency.item_size_bytes;
        const double serve_mbps = load * wire_bytes * 8.0 / 1e6;
        const double delivered_mbps =
            backup_state->RunNetwork(t, t_end, serve_mbps);
        if (delivered_mbps < serve_mbps * 0.999) {
          result.backup_tokens_exhausted = true;
          net_rate_cap = delivered_mbps * 1e6 / (wire_bytes * 8.0);
        }
      }
      const double capacity_rate = std::min(
          0.9 * backup_cap.vcpus * config.latency.service_rate_per_vcpu,
          net_rate_cap);
      const double served_fraction =
          load > capacity_rate ? capacity_rate / load : 1.0;
      const double served_w = to_backup * served_fraction;
      const double spill_w = to_backup - served_w;
      const NodeLatency nl =
          model.HitLatency(load * served_fraction, backup_cap);
      const double hop = config.backup_hop.seconds();
      if (served_w > 0.0) {
        mixture.push_back({nl.mean.seconds() + hop, served_w * 0.95});
        mixture.push_back({nl.p95.seconds() + hop, served_w * 0.05});
        hot_mixture.push_back({nl.mean.seconds() + hop, served_w * 0.95});
        hot_mixture.push_back({nl.p95.seconds() + hop, served_w * 0.05});
      }
      if (spill_w > 0.0) {
        mixture.push_back({miss_latency.seconds(), spill_w});
        hot_mixture.push_back({miss_latency.seconds(), spill_w});
      }
    }
    if (to_backend > 0.0) {
      mixture.push_back({miss_latency.seconds(), to_backend});
      if (!backup_ok && !config.separation_mode && uncovered_hot > 0.0) {
        hot_mixture.push_back({miss_latency.seconds(), uncovered_hot});
      }
    }

    double total_w = 0.0;
    double mean = 0.0;
    for (const auto& [lat, w] : mixture) {
      total_w += w;
      mean += lat * w;
    }
    if (total_w <= 0.0) {
      continue;
    }
    mean /= total_w;
    std::sort(mixture.begin(), mixture.end());
    double acc = 0.0;
    double p95 = mixture.back().first;
    for (const auto& [lat, w] : mixture) {
      acc += w;
      if (acc > 0.95 * total_w * (1.0 + 1e-12)) {
        p95 = lat;
        break;
      }
    }

    RecoveryPoint point;
    point.t_seconds = t.seconds();
    point.mean = Duration::FromSecondsF(mean);
    point.p95 = Duration::FromSecondsF(p95);
    point.warm_traffic_fraction = covered;
    point.shed_fraction = shed_fraction;
    result.series.push_back(point);
    result.max_mean_latency = std::max(result.max_mean_latency, point.mean);

    if (!settled) {
      for (const auto& sample : hot_mixture) {
        recovery_mixture.push_back(sample);
      }
      if (point.mean.seconds() <= 1.05 * config.target_mean.seconds()) {
        settled = true;
        result.warmup_time = (t + config.epoch) - SimTime();
        if (obs != nullptr) {
          obs->tracer.Custom(
              t + config.epoch, "recovery_settled",
              {{"warmup_s",
                EventTracer::JsonNumber(result.warmup_time.seconds())}});
        }
      }
    }
    if (obs != nullptr && result.backup_tokens_exhausted && !exhaustion_traced) {
      exhaustion_traced = true;
      obs->registry.GetCounter("recovery/token_exhaustions")->Increment();
      obs->tracer.TokenExhaustion(t, 0, "recovery");
    }
  }
  if (obs != nullptr) {
    obs->registry.GetHistogram("recovery/warmup_s")
        ->Record(result.warmup_time.seconds());
  }

  if (!recovery_mixture.empty()) {
    std::sort(recovery_mixture.begin(), recovery_mixture.end());
    double total_w = 0.0;
    for (const auto& [lat, w] : recovery_mixture) {
      total_w += w;
    }
    double acc = 0.0;
    for (const auto& [lat, w] : recovery_mixture) {
      acc += w;
      if (acc > 0.95 * total_w * (1.0 + 1e-12)) {
        result.p95_during_recovery = Duration::FromSecondsF(lat);
        break;
      }
    }
  }
  return result;
}

Duration NetworkCreditEarnTime(const InstanceTypeSpec& burstable, double data_gb) {
  // Tokens needed to push `data_gb` at peak: the megabits transferred above
  // what the baseline contributes during the burst.
  const double peak = burstable.capacity.net_mbps;
  const double base = burstable.baseline_net_mbps;
  if (peak <= base) {
    return Duration::Seconds(0);
  }
  const double burst_seconds = GbToMegabits(data_gb) / peak;
  const double tokens_needed = (peak - base) * burst_seconds;  // megabits
  // Accrual rate: baseline Mbps -> megabits per second.
  return Duration::FromSecondsF(tokens_needed / base);
}

}  // namespace spotcache
