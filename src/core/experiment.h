// The evaluation harness: runs one procurement approach over one workload on
// the simulated cloud, producing the cost / performance numbers behind the
// paper's Figures 7, 9, 10, 12 and 13.

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cloud/cloud_provider.h"
#include "src/core/cluster.h"
#include "src/core/controller.h"
#include "src/fault/fault_plan.h"
#include "src/obs/obs.h"
#include "src/resilience/resilience.h"
#include "src/sim/metrics.h"
#include "src/workload/workload_spec.h"

namespace spotcache {

/// The procurement approaches of paper Table 4 (plus the ODPeak strawman).
enum class Approach {
  kOdPeak,        // static peak provisioning, on-demand only
  kOdOnly,        // dynamic autoscaling, on-demand only
  kOdSpotSep,     // our spot modeling, hot/cold separation, no backup
  kOdSpotCdf,     // CDF spot modeling, hot/cold mixing, no backup
  kPropNoBackup,  // our spot modeling + mixing, no backup
  kProp,          // our spot modeling + mixing + burstable backup
};

std::string_view ToString(Approach a);
std::vector<Approach> AllApproaches();

/// Table 4 feature flags for an approach.
struct ApproachTraits {
  bool uses_spot = false;
  bool our_spot_model = false;  // lifetime model (vs CDF baseline)
  bool hot_cold_mixing = false;
  bool passive_backup = false;
  bool static_peak = false;
};
ApproachTraits TraitsOf(Approach a);

struct ExperimentConfig {
  WorkloadSpec workload;
  Approach approach = Approach::kPropNoBackup;
  /// Restrict the spot option space to these market names (empty = all four).
  std::vector<std::string> market_filter;
  uint64_t market_seed = 7;
  /// Bid levels as multiples of the market's on-demand price (§5.1: d, 5d).
  std::vector<double> bid_multipliers = {1.0, 5.0};
  OptimizerConfig optimizer;
  ClusterConfig cluster;
  Duration substep = Duration::Minutes(5);
  /// Reactive re-plan threshold: actual/predicted demand ratio above which
  /// the controller re-solves with observed values mid-slot.
  double reactive_threshold = 1.05;
  /// Deterministic fault schedule injected into the provider; an empty spec
  /// (the default) runs fault-free. Schedules are pure functions of
  /// (fault_seed, fault), so a run replays bit-identically from the config.
  FaultScenarioSpec fault;
  uint64_t fault_seed = 0x5eed;
  /// Market cooldown applied by the controller after each observed
  /// revocation (zero disables; see GlobalController::SetRevocationCooldown).
  Duration revocation_cooldown;
  /// Observability: when enabled, the run carries a metrics registry and an
  /// event tracer through every component, and the result holds the exported
  /// JSONL / CSV / Prometheus artifacts (also written to the configured
  /// paths). The JSONL and CSV exports contain only sim-time data, so two
  /// runs of the same (config, seed) produce byte-identical streams; the
  /// Prometheus snapshot additionally includes wall-clock timer histograms
  /// and is expected to vary run-to-run.
  ObsConfig obs;
  /// Request-path resilience: health tracking, circuit breakers, in-step
  /// replacement retries, escalating market cooldowns, and admission-control
  /// shedding. Disabled by default; with it off every output is bit-identical
  /// to the pre-resilience harness.
  ResilienceConfig resilience;
};

/// Returns "" when the config is well-formed, else an actionable message.
/// RunExperiment calls this and throws std::invalid_argument on failure, so
/// malformed configs (NaN rates, zero-capacity types, inverted retry bounds)
/// fail loudly at load instead of corrupting a multi-day simulation.
std::string ValidateExperimentConfig(const ExperimentConfig& config);

struct SlotRecord {
  SimTime start;
  double lambda = 0.0;
  double lambda_hat = 0.0;
  double working_set_gb = 0.0;
  std::vector<int> counts;  // per option, post-apply
  int backups = 0;
  double cost = 0.0;  // ledger delta across the slot
  double affected_fraction = 0.0;
  double shed_fraction = 0.0;  // admission-control drops (resilience layer)
  Duration mean_latency;
  Duration p95_latency;
  int revocations = 0;
};

struct ExperimentResult {
  std::string approach_name;
  std::vector<std::string> option_labels;
  std::vector<SlotRecord> slots;
  SloTracker tracker;
  double total_cost = 0.0;
  double od_cost = 0.0;
  double spot_cost = 0.0;
  double backup_cost = 0.0;
  int revocations = 0;
  int bid_rejections = 0;
  /// Per-fault injection counters (all zero for fault-free runs).
  FaultCounters faults;
  int64_t launch_failures = 0;     // cluster-observed failed launches
  int64_t failed_replacements = 0; // revocations left uncovered by a launch

  /// Exported observability artifacts (empty when obs is disabled).
  std::string trace_jsonl;
  std::string metrics_csv;
  std::string metrics_prometheus;

  /// Index of an option by label; npos when absent.
  size_t OptionIndex(std::string_view label) const;
};

/// Runs the experiment; deterministic for a given config.
ExperimentResult RunExperiment(const ExperimentConfig& config);

/// Builds the spot feature predictor an approach uses (null for OD-only).
std::unique_ptr<SpotFeaturePredictor> MakePredictor(Approach a);

}  // namespace spotcache
