// The global controller (paper §4.2): each control slot it
//   1. updates workload predictions (AR(2) over observed lambda and M),
//   2. queries the configured spot feature predictor per (market, bid),
//   3. solves the procurement optimization,
// and additionally offers a reactive re-plan for mid-slot surprises (flash
// crowds, revocations) — the hierarchical predictive+reactive split the paper
// describes.

#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/opt/optimizer.h"
#include "src/predict/spot_predictor.h"
#include "src/predict/workload_predictor.h"
#include "src/resilience/retry_policy.h"
#include "src/workload/zipf.h"

namespace spotcache {

class GlobalController {
 public:
  /// `predictor` may be null for approaches that never use spot (ODOnly).
  GlobalController(ProcurementOptimizer optimizer,
                   std::unique_ptr<SpotFeaturePredictor> predictor);

  const ProcurementOptimizer& optimizer() const { return optimizer_; }
  const std::vector<ProcurementOption>& options() const {
    return optimizer_.options();
  }

  /// Feeds the previous slot's observed workload into the predictors.
  void ObserveSlot(double lambda, double working_set_gb);

  /// Reactive market cooldown: after an observed revocation on `option`,
  /// the controller treats that option as unavailable until now + cooldown.
  /// Correlated revocation storms thus push the plan onto on-demand (and
  /// other markets) instead of immediately re-buying into the storm. A zero
  /// cooldown (the default) disables the mechanism.
  void SetRevocationCooldown(Duration cooldown) { revocation_cooldown_ = cooldown; }
  Duration revocation_cooldown() const { return revocation_cooldown_; }
  void NoteRevocation(size_t option, SimTime now);
  /// Whether `option` is currently in cooldown.
  bool InCooldown(size_t option, SimTime now) const;

  /// Escalating cooldowns (resilience layer): successive revocations of the
  /// same option *while it is still cooling* lengthen the cooldown under the
  /// retry policy (initial_delay should be the base revocation cooldown);
  /// a revocation after the option recovered resets the escalation.
  void EnableCooldownBackoff(const RetryPolicyConfig& config, uint64_t seed);
  /// Current escalation streak for an option (tests/diagnostics).
  int CooldownStreak(size_t option) const;

  /// Predicted workload for the upcoming slot (persistence until enough
  /// history accumulates).
  double PredictLambda() const { return lambda_predictor_.Predict(); }
  double PredictWorkingSetGb() const { return ws_predictor_.Predict(); }

  /// Builds the optimizer inputs at `now` for the given popularity profile
  /// and current holdings, then solves. `lambda` / `ws_gb` are the demand
  /// values to plan for (predictions for the proactive plan, observed actuals
  /// for a reactive re-plan).
  AllocationPlan Plan(SimTime now, double lambda, double ws_gb,
                      const ZipfPopularity& popularity,
                      const std::vector<int>& existing) const;

  /// Convenience: the slot inputs Plan() would use (exposed for tests).
  SlotInputs BuildInputs(SimTime now, double lambda, double ws_gb,
                         const ZipfPopularity& popularity,
                         const std::vector<int>& existing) const;

  /// Attaches observability (null detaches): Plan records wall-clock
  /// `controller/plan_ms` and a plan counter, NoteRevocation traces market
  /// cooldowns; the optimizer's solve timer is attached alongside.
  void AttachObs(Obs* obs);

 private:
  ProcurementOptimizer optimizer_;
  std::unique_ptr<SpotFeaturePredictor> spot_predictor_;
  Ar2Predictor lambda_predictor_;
  Ar2Predictor ws_predictor_;
  Duration revocation_cooldown_;  // zero = disabled
  std::unordered_map<size_t, SimTime> cooldown_until_;
  std::optional<RetryPolicy> cooldown_policy_;  // escalating cooldowns
  std::unordered_map<size_t, int> cooldown_streak_;
  Obs* obs_ = nullptr;
  Histogram* plan_hist_ = nullptr;
  Counter* plans_ = nullptr;
  Counter* cooldowns_ = nullptr;
};

}  // namespace spotcache
