#include "src/core/controller.h"

#include <algorithm>

namespace spotcache {

GlobalController::GlobalController(ProcurementOptimizer optimizer,
                                   std::unique_ptr<SpotFeaturePredictor> predictor)
    : optimizer_(std::move(optimizer)), spot_predictor_(std::move(predictor)) {}

void GlobalController::ObserveSlot(double lambda, double working_set_gb) {
  lambda_predictor_.Observe(lambda);
  ws_predictor_.Observe(working_set_gb);
}

void GlobalController::AttachObs(Obs* obs) {
  obs_ = obs;
  optimizer_.AttachObs(obs);
  if (obs == nullptr) {
    plan_hist_ = nullptr;
    plans_ = nullptr;
    cooldowns_ = nullptr;
    return;
  }
  plan_hist_ = obs->registry.GetHistogram("controller/plan_ms");
  plans_ = obs->registry.GetCounter("controller/plans");
  cooldowns_ = obs->registry.GetCounter("controller/cooldowns");
}

void GlobalController::EnableCooldownBackoff(const RetryPolicyConfig& config,
                                             uint64_t seed) {
  cooldown_policy_.emplace(config, seed);
}

int GlobalController::CooldownStreak(size_t option) const {
  const auto it = cooldown_streak_.find(option);
  return it == cooldown_streak_.end() ? 0 : it->second;
}

void GlobalController::NoteRevocation(size_t option, SimTime now) {
  Duration cooldown = revocation_cooldown_;
  if (cooldown_policy_.has_value()) {
    // A revocation while the option is still cooling means the storm is
    // ongoing: escalate. One that lands after recovery starts a new streak.
    int& streak = cooldown_streak_[option];
    streak = InCooldown(option, now) ? streak + 1 : 1;
    cooldown = cooldown_policy_->Delay(option, streak);
  }
  if (cooldown <= Duration::Micros(0)) {
    return;
  }
  SimTime& until = cooldown_until_[option];
  until = std::max(until, now + cooldown);
  if (obs_ != nullptr) {
    cooldowns_->Increment();
    obs_->tracer.MarketCooldown(
        now, option < optimizer_.options().size()
                 ? std::string_view(optimizer_.options()[option].label)
                 : std::string_view("?"),
        until);
  }
}

bool GlobalController::InCooldown(size_t option, SimTime now) const {
  const auto it = cooldown_until_.find(option);
  return it != cooldown_until_.end() && now < it->second;
}

SlotInputs GlobalController::BuildInputs(SimTime now, double lambda, double ws_gb,
                                         const ZipfPopularity& popularity,
                                         const std::vector<int>& existing) const {
  const auto& options = optimizer_.options();
  SlotInputs in;
  in.lambda_hat = lambda;
  in.working_set_gb = ws_gb;

  const double alpha = optimizer_.config().alpha;
  const double coverage = optimizer_.config().hot_coverage;
  // Hot set: smallest key-fraction covering `coverage` of accesses, relative
  // to the in-memory portion. Uniform item sizes make key fraction == working
  // set fraction. Highly skewed workloads can shrink the true hot set to a
  // few kilobytes; pad it to 100 MB for placement purposes — harmless for
  // cost, and it keeps the LP coefficients well conditioned.
  in.hot_ws_fraction = std::min(popularity.KeyFractionForCoverage(coverage), alpha);
  if (ws_gb > 0.0) {
    in.hot_ws_fraction = std::min(
        alpha, std::max(in.hot_ws_fraction, 0.1 / ws_gb));
  }
  in.hot_access_fraction = popularity.AccessFraction(in.hot_ws_fraction);
  in.alpha_access_fraction = popularity.AccessFraction(alpha);

  in.spot_predictions.resize(options.size());
  in.available.assign(options.size(), false);
  in.existing = existing;
  in.existing.resize(options.size(), 0);

  for (size_t o = 0; o < options.size(); ++o) {
    const ProcurementOption& opt = options[o];
    if (opt.is_on_demand()) {
      in.available[o] = true;
      continue;
    }
    if (spot_predictor_ == nullptr) {
      continue;  // spot disabled for this approach
    }
    // Recently-revoked markets sit out the cooldown (revocation storms).
    if (InCooldown(o, now)) {
      continue;
    }
    // A bid below the current price fails immediately: not available.
    if (opt.market->trace.PriceAt(now) > opt.bid) {
      continue;
    }
    in.spot_predictions[o] = spot_predictor_->Predict(opt.market->trace, now, opt.bid);
    in.available[o] = in.spot_predictions[o].usable;
  }
  return in;
}

AllocationPlan GlobalController::Plan(SimTime now, double lambda, double ws_gb,
                                      const ZipfPopularity& popularity,
                                      const std::vector<int>& existing) const {
  SPOTCACHE_TIMED(plan_hist_);
  if (plans_ != nullptr) {
    plans_->Increment();
  }
  return optimizer_.Solve(BuildInputs(now, lambda, ws_gb, popularity, existing));
}

}  // namespace spotcache
