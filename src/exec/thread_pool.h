// A fixed-size worker pool for embarrassingly parallel simulation work.
//
// The experiment grids (Figure 13, the ablations, the fault-storm study)
// replay hundreds of independent (workload, approach, seed) cells; each cell
// is a pure function of its config, so the only parallelism primitive needed
// is "run N closures on K threads and wait". The pool is deliberately small:
// a mutex-guarded deque, no work stealing, no futures — cells are seconds
// long, so queue overhead is irrelevant, and determinism comes from writing
// results into pre-sized slots rather than from any ordering guarantee here.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace spotcache {

/// Worker-thread count to use when the caller does not specify one:
/// `SPOTCACHE_THREADS` when set to a positive integer, otherwise
/// `std::thread::hardware_concurrency()` (at least 1).
int DefaultThreadCount();

class ThreadPool {
 public:
  /// `threads` <= 0 selects DefaultThreadCount().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw (the simulator is exception-free);
  /// a throwing task terminates, which is the behavior we want in benches.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void WaitIdle();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  // queued + executing
  bool stopping_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
/// Iterations are claimed dynamically (an atomic cursor), so uneven cell
/// costs — a 90-day Prop run next to a 1-day ODOnly run — still balance.
template <typename Fn>
void ParallelFor(ThreadPool& pool, size_t n, Fn&& fn) {
  if (n == 0) {
    return;
  }
  // One task per worker, each draining a shared index; avoids n allocations.
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  const int workers = pool.thread_count();
  for (int w = 0; w < workers && static_cast<size_t>(w) < n; ++w) {
    pool.Submit([cursor, n, &fn] {
      for (size_t i = cursor->fetch_add(1); i < n; i = cursor->fetch_add(1)) {
        fn(i);
      }
    });
  }
  pool.WaitIdle();
}

}  // namespace spotcache
