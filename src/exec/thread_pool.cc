#include "src/exec/thread_pool.h"

#include <cstdlib>

namespace spotcache {

int DefaultThreadCount() {
  if (const char* env = std::getenv("SPOTCACHE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace spotcache
