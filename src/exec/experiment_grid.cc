#include "src/exec/experiment_grid.h"

#include <cstring>

#include "src/exec/thread_pool.h"

namespace spotcache {

std::vector<ExperimentResult> RunExperimentGrid(
    const std::vector<ExperimentConfig>& cells, const GridOptions& options) {
  std::vector<ExperimentResult> results(cells.size());
  if (cells.empty()) {
    return results;
  }
  const int threads = options.threads > 0 ? options.threads : DefaultThreadCount();
  if (threads <= 1 || cells.size() == 1) {
    // Serial reference path: identical code, no pool.
    for (size_t i = 0; i < cells.size(); ++i) {
      results[i] = RunExperiment(cells[i]);
    }
    return results;
  }
  ThreadPool pool(threads);
  ParallelFor(pool, cells.size(),
              [&](size_t i) { results[i] = RunExperiment(cells[i]); });
  return results;
}

GridSummary SummarizeGrid(const std::vector<ExperimentResult>& results) {
  GridSummary s;
  s.cells = results.size();
  for (const ExperimentResult& r : results) {
    OnlineStats cell_cost;
    cell_cost.Add(r.total_cost);
    s.cost.Merge(cell_cost);
    OnlineStats cell_affected;
    cell_affected.Add(r.tracker.AffectedRequestFraction());
    s.affected_fraction.Merge(cell_affected);
    s.revocations += r.revocations;
    s.bid_rejections += r.bid_rejections;
  }
  return s;
}

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(uint64_t& h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void HashU64(uint64_t& h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashDouble(uint64_t& h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashBytes(h, &bits, sizeof(bits));
}

void HashString(uint64_t& h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t DigestExperimentResult(const ExperimentResult& r) {
  uint64_t h = kFnvOffset;
  HashString(h, r.approach_name);
  HashU64(h, r.option_labels.size());
  for (const std::string& label : r.option_labels) {
    HashString(h, label);
  }
  HashDouble(h, r.total_cost);
  HashDouble(h, r.od_cost);
  HashDouble(h, r.spot_cost);
  HashDouble(h, r.backup_cost);
  HashU64(h, static_cast<uint64_t>(r.revocations));
  HashU64(h, static_cast<uint64_t>(r.bid_rejections));
  HashU64(h, static_cast<uint64_t>(r.launch_failures));
  HashU64(h, static_cast<uint64_t>(r.failed_replacements));
  HashU64(h, r.slots.size());
  for (const SlotRecord& s : r.slots) {
    HashU64(h, static_cast<uint64_t>(s.start.micros()));
    HashDouble(h, s.lambda);
    HashDouble(h, s.lambda_hat);
    HashDouble(h, s.working_set_gb);
    HashU64(h, s.counts.size());
    for (const int c : s.counts) {
      HashU64(h, static_cast<uint64_t>(c));
    }
    HashU64(h, static_cast<uint64_t>(s.backups));
    HashDouble(h, s.cost);
    HashDouble(h, s.affected_fraction);
    HashU64(h, static_cast<uint64_t>(s.mean_latency.micros()));
    HashU64(h, static_cast<uint64_t>(s.p95_latency.micros()));
    HashU64(h, static_cast<uint64_t>(s.revocations));
  }
  HashString(h, r.trace_jsonl);
  HashString(h, r.metrics_csv);
  return h;
}

uint64_t DigestExperimentResults(const std::vector<ExperimentResult>& results) {
  uint64_t h = kFnvOffset;
  for (const ExperimentResult& r : results) {
    HashU64(h, DigestExperimentResult(r));
  }
  return h;
}

}  // namespace spotcache
