// Parallel experiment driver: fans independent ExperimentConfig cells out
// across a thread pool while preserving the serial harness's results exactly.
//
// Every cell is a pure function of its config (RunExperiment is deterministic
// and shares no mutable state across runs), so parallel execution only
// reorders *wall-clock* completion; results land in a vector indexed by cell
// and are therefore merged in deterministic cell order no matter which worker
// finished first. RunExperimentGrid(cells, 1) and RunExperimentGrid(cells, K)
// produce byte-identical result streams — test_exec asserts this, and
// DigestExperimentResult gives the cheap fingerprint both the test and the
// perf baseline harness compare.

#pragma once

#include <cstdint>
#include <vector>

#include "src/core/experiment.h"
#include "src/util/stats.h"

namespace spotcache {

struct GridOptions {
  /// Worker threads; <= 0 selects DefaultThreadCount() (SPOTCACHE_THREADS
  /// when set, else the hardware concurrency).
  int threads = 0;
};

/// Runs every cell and returns results in cell order (results[i] corresponds
/// to cells[i], regardless of completion order).
std::vector<ExperimentResult> RunExperimentGrid(
    const std::vector<ExperimentConfig>& cells, const GridOptions& options = {});

/// Order-independent summary of a finished grid, merged in deterministic cell
/// order via the parallel-friendly OnlineStats::Merge.
struct GridSummary {
  OnlineStats cost;
  OnlineStats affected_fraction;
  int64_t revocations = 0;
  int64_t bid_rejections = 0;
  size_t cells = 0;
};
GridSummary SummarizeGrid(const std::vector<ExperimentResult>& results);

/// FNV-1a fingerprint over every numeric field of the result (costs, slot
/// records, counters), hashing doubles by bit pattern so "byte-identical"
/// means exactly that. Trace/metrics export strings are included when
/// present.
uint64_t DigestExperimentResult(const ExperimentResult& result);

/// Combined digest over a whole grid, in cell order.
uint64_t DigestExperimentResults(const std::vector<ExperimentResult>& results);

}  // namespace spotcache
