// ShardedServer: N reactor shards behind one port.
//
// Each shard is a full NetServer — private epoll loop, private ItemStore
// partition, private RequestTelemetry, private Obs registry — running on its
// own thread. Keys are partitioned by ShardOfKey (splitmix64-finalized
// HashString modulo shard count), so the per-request get/set path on a
// shard-local key touches no locks and no atomics. Cross-shard keys travel
// through the ShardExchange's bounded SPSC mailboxes (see sharding.h).
//
// Accept strategy: by default every shard binds the same port with
// SO_REUSEPORT and the kernel spreads connections by 4-tuple. Where
// SO_REUSEPORT is unavailable (or when `force_dispatch` is set — the test
// hook), shard 0 binds alone, accepts for everyone, and round-robins the
// accepted fds to its peers via kAdoptConn handoffs.
//
// Aggregation surfaces:
//   * `stats` / `stats spotcache` — the serving shard gathers kSnapshot
//     round-trips from every peer at the stats barrier, so totals are
//     coherent (ServerCore::GatherPeerSnapshots).
//   * Prometheus scrape (`--metrics-port`, shard 0's loop) — shards
//     epoch-publish registry copies into a MetricsHub; the scrape renders
//     the aggregate, never a mid-update counter (metrics_hub.h).
//   * SIGUSR1 flight recorder — RequestTelemetryDump() fans out to every
//     shard (async-signal-safe); dumps append to one shared span file under
//     a shared mutex, and shard 0 writes the hub-aggregated metrics file.
//
// threads == 1 is a true passthrough: one un-sharded NetServer, no exchange,
// no hub, no extra atomics — byte-identical behavior to the plain server.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/net/server.h"
#include "src/net/sharding.h"
#include "src/obs/metrics_hub.h"
#include "src/obs/obs.h"

namespace spotcache {
class SpotCacheSystem;
}  // namespace spotcache

namespace spotcache::net {

/// Wake masks and the dispatch round-robin assume shard indices fit a
/// uint64_t bitmask.
inline constexpr uint32_t kMaxShards = 64;

struct ShardedServerConfig {
  /// Per-shard template. `core.capacity_bytes` is the TOTAL cache budget,
  /// split evenly across shards. The metrics listener / metrics dump run on
  /// shard 0 only.
  NetServerConfig base;
  uint32_t threads = 1;  // clamped to [1, kMaxShards]
  /// Pin shard i to cpu (i % hardware_concurrency).
  bool pin_threads = false;
  /// Test hook: use the kAdoptConn accept fallback even where SO_REUSEPORT
  /// is available.
  bool force_dispatch = false;
};

class ShardedServer {
 public:
  ShardedServer(const ShardedServerConfig& config,
                SpotCacheSystem* system = nullptr, Obs* system_obs = nullptr);

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Builds and binds every shard. Returns false (shards torn down) on any
  /// bind/listen failure.
  bool Start();
  /// Spawns one thread per shard and blocks until all of them exit (Stop()
  /// or fatal loop errors). Returns false if any shard loop failed.
  bool Run();
  /// Thread-safe, async-signal-safe-adjacent shutdown (atomic + eventfd per
  /// shard).
  void Stop();
  /// Fans the flight-recorder dump request out to every shard.
  /// Async-signal-safe: per shard one atomic store + one write(2).
  void RequestTelemetryDump();
  /// Injects the expiry clock into every shard (kept across Start(), so it
  /// may be set before or after it). Call before Run().
  void SetClock(std::function<int64_t()> now_unix);

  /// The shared cache port (after Start()).
  uint16_t port() const { return shards_.empty() ? 0 : shards_[0]->port(); }
  /// Shard 0's metrics port (0 when the scrape listener is off).
  uint16_t metrics_port() const {
    return shards_.empty() ? 0 : shards_[0]->metrics_port();
  }
  uint32_t shard_count() const { return shard_count_; }
  /// True when serving through per-shard SO_REUSEPORT listeners (false:
  /// dispatch fallback). Meaningful after Start().
  bool using_reuseport() const { return using_reuseport_; }

  NetServer& shard(size_t i) { return *shards_[i]; }
  Obs& shard_obs(size_t i) { return *shard_obs_[i]; }
  MetricsHub& hub() { return hub_; }

  /// Sum of every shard's core counters. Only coherent once the loops have
  /// stopped (final stats reporting).
  CoreSnapshot TotalSnapshot() const;

 private:
  ShardedServerConfig config_;
  SpotCacheSystem* system_;
  Obs* system_obs_;
  std::function<int64_t()> clock_;
  uint32_t shard_count_;
  bool using_reuseport_ = false;

  ShardExchange exchange_;
  MetricsHub hub_;  // one slot per shard + one for the control registry
  std::mutex system_mu_;
  std::mutex dump_mu_;
  std::vector<std::unique_ptr<Obs>> shard_obs_;
  std::vector<std::unique_ptr<NetServer>> shards_;
};

}  // namespace spotcache::net
