// Transport-independent memcached command execution.
//
// ServerCore turns parsed TextRequests into wire responses against an
// ItemStore, optionally routed through the simulation stack: when a
// SpotCacheSystem is attached, every get/set also flows through
// Router::Route and SpotCacheSystem::Get/Put (string keys hashed to KeyIds),
// so the degradation ladder, circuit breakers, and admission control gate
// real connections. The ItemStore stays authoritative for payload bytes —
// the system models placement, health, and shedding; a ladder decision of
// "shed" turns the reply into SERVER_ERROR instead of serving.
//
// Handle() is a pure function of (request, now, store/system state): no wall
// clock, no I/O, no iteration-order dependence — which is what lets the
// conformance suite run the same tables both in-process and over a socket,
// and the fuzzer compare byte-identical outputs across stream chunkings.
//
// Telemetry (optional, attached by the server): each handled request reports
// its (op, outcome) classification, and span-sampled requests get their
// ladder/router time stamped separately from store time, so the flight
// recorder can attribute tail latency to route vs. store phases. The
// wall-clock reads live behind `telemetry->span_active()` (1/256 by
// default), preserving Handle()'s determinism for every unsampled request.
//
// Stats surfaces: plain `stats` emits the memcached-compatible block plus
// `STAT spotcache_*` resilience lines (breaker states, shed fraction);
// `stats spotcache` emits the full server-telemetry extension (event-loop
// health, sampled span counts, per-(op, outcome) latency quantiles).

#pragma once

#include <cstdint>
#include <string>

#include "src/cache/cache_protocol.h"
#include "src/net/item_store.h"
#include "src/net/protocol.h"
#include "src/net/response.h"
#include "src/obs/obs.h"
#include "src/obs/request_telemetry.h"
#include "src/routing/hash.h"

namespace spotcache {
class SpotCacheSystem;
}  // namespace spotcache

namespace spotcache::net {

struct ServerCoreConfig {
  size_t capacity_bytes = 64 * 1024 * 1024;
  std::string version = "spotcache-1.6.0";
};

class ServerCore {
 public:
  explicit ServerCore(const ServerCoreConfig& config,
                      SpotCacheSystem* system = nullptr, Obs* obs = nullptr);

  /// Attaches the serving-path telemetry (non-owning; may be null). The
  /// server wires its RequestTelemetry in here so Handle() can classify
  /// outcomes and stamp route/store phases on sampled requests.
  void set_telemetry(RequestTelemetry* telemetry) { telemetry_ = telemetry; }

  /// Executes one request at unix-seconds `now`, appending any reply to
  /// `out` (noreply suppresses success/failure status lines, per protocol).
  /// Returns false when the connection should close (quit).
  bool Handle(const TextRequest& req, int64_t now, ResponseAssembler* out);

  /// Appends the reply for a parse error (always sent: memcached reports
  /// protocol errors even on noreply commands).
  void HandleParseError(ParseErrorKind kind, ResponseAssembler* out);

  ItemStore& store() { return store_; }
  const ItemStore& store() const { return store_; }

  uint64_t cmd_get() const { return cmd_get_; }
  uint64_t cmd_set() const { return cmd_set_; }
  uint64_t get_hits() const { return get_hits_; }
  uint64_t get_misses() const { return get_misses_; }
  uint64_t sheds() const { return sheds_; }
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  /// (outcome, bytes) classification of one handled request, reported to
  /// the telemetry layer by Handle().
  struct Outcome {
    RequestOutcome outcome = RequestOutcome::kOther;
    uint32_t value_bytes = 0;
  };

  Outcome HandleRetrieve(const TextRequest& req, int64_t now,
                         ResponseAssembler* out);
  Outcome HandleStorage(const TextRequest& req, int64_t now,
                        ResponseAssembler* out);
  void HandleStats(const TextRequest& req, int64_t now,
                   ResponseAssembler* out);
  /// The memcached-compatible stats block (+ spotcache_* resilience lines).
  void AppendDefaultStats(int64_t now, ResponseAssembler* out);
  /// `STAT spotcache_*` resilience lines (breaker states, shed fraction).
  void AppendResilienceStats(ResponseAssembler* out);
  /// The `stats spotcache` extension: telemetry + event-loop health.
  void AppendSpotcacheStats(ResponseAssembler* out);
  /// Consults the attached system's ladder for one keyed operation; reports
  /// who (model-)served it. kDropped means the request should be shed.
  ServedBy GateGet(std::string_view key);
  void GatePut(std::string_view key, size_t bytes);

  ServerCoreConfig config_;
  ItemStore store_;
  SpotCacheSystem* system_;
  Obs* obs_;
  RequestTelemetry* telemetry_ = nullptr;
  int64_t start_time_ = -1;  // first-request time, for the uptime stat

  uint64_t cmd_get_ = 0;
  uint64_t cmd_set_ = 0;
  uint64_t cmd_touch_ = 0;
  uint64_t cmd_delete_ = 0;
  uint64_t cmd_flush_ = 0;
  uint64_t get_hits_ = 0;
  uint64_t get_misses_ = 0;
  uint64_t sheds_ = 0;
  uint64_t protocol_errors_ = 0;

  // Fleet counters (resolved once; null when obs is detached).
  Counter* obs_requests_ = nullptr;
  Counter* obs_get_hits_ = nullptr;
  Counter* obs_get_misses_ = nullptr;
  Counter* obs_sets_ = nullptr;
  Counter* obs_sheds_ = nullptr;
  Counter* obs_protocol_errors_ = nullptr;
};

}  // namespace spotcache::net
