// Transport-independent memcached command execution.
//
// ServerCore turns parsed TextRequests into wire responses against an
// ItemStore, optionally routed through the simulation stack: when a
// SpotCacheSystem is attached, every get/set also flows through
// Router::Route and SpotCacheSystem::Get/Put (string keys hashed to KeyIds),
// so the degradation ladder, circuit breakers, and admission control gate
// real connections. The ItemStore stays authoritative for payload bytes —
// the system models placement, health, and shedding; a ladder decision of
// "shed" turns the reply into SERVER_ERROR instead of serving.
//
// Handle() is a pure function of (request, now, store/system state): no wall
// clock, no I/O, no iteration-order dependence — which is what lets the
// conformance suite run the same tables both in-process and over a socket,
// and the fuzzer compare byte-identical outputs across stream chunkings.
//
// Telemetry (optional, attached by the server): each handled request reports
// its (op, outcome) classification, and span-sampled requests get their
// ladder/router time stamped separately from store time, so the flight
// recorder can attribute tail latency to route vs. store phases. The
// wall-clock reads live behind `telemetry->span_active()` (1/256 by
// default), preserving Handle()'s determinism for every unsampled request.
//
// Stats surfaces: plain `stats` emits the memcached-compatible block plus
// `STAT spotcache_*` resilience lines (breaker states, shed fraction);
// `stats spotcache` emits the full server-telemetry extension (event-loop
// health, sampled span counts, per-(op, outcome) latency quantiles).

// Sharded serving (multi-core PR): when a ShardContext is attached, the
// core becomes one of N partitions. Keys it owns (ShardOfKey == self) run
// the exact single-threaded path — no locks, no atomics; keys owned by
// other shards are scattered ahead through the ShardExchange mailboxes
// (ExecuteBatch parses a whole drain batch, submits every remote op up to
// the next ordering barrier, then executes requests in order, awaiting each
// remote reply at its emission point so multi-key `get` responses come back
// in request order). `stats` and `flush_all` are barriers: they gather
// kSnapshot/kFlushAll round-trips from every peer, so aggregate stats are
// coherent and flush ordering matches the sequential server.

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/cache/cache_protocol.h"
#include "src/net/item_store.h"
#include "src/net/protocol.h"
#include "src/net/request_handler.h"
#include "src/net/response.h"
#include "src/net/sharding.h"
#include "src/obs/obs.h"
#include "src/obs/request_telemetry.h"
#include "src/routing/hash.h"

namespace spotcache {
class SpotCacheSystem;
}  // namespace spotcache

namespace spotcache::net {

struct ServerCoreConfig {
  size_t capacity_bytes = 64 * 1024 * 1024;
  std::string version = "spotcache-1.6.0";
};

/// Identity + plumbing of one shard in the multi-core server. Default state
/// (null exchange) means "not sharded" and leaves every hot path untouched.
struct ShardContext {
  uint32_t self = 0;
  uint32_t count = 1;
  ShardExchange* exchange = nullptr;
  /// Serializes access to the shared SpotCacheSystem (the control-plane
  /// model is not thread-safe; its gate calls are heavyweight already).
  std::mutex* system_mu = nullptr;
  /// The obs bundle the shared system publishes into (resilience counters
  /// live there, not in the per-shard registries).
  Obs* system_obs = nullptr;
};

/// One parsed-and-owned request (or parse error) from a drain batch. The
/// sharded path deep-copies out of the parser buffer so remote operations
/// can be scattered ahead while later requests are still being parsed.
struct PendingEvent {
  bool is_error = false;
  ParseErrorKind error = ParseErrorKind::kUnknownCommand;

  Verb verb = Verb::kGet;
  std::vector<std::string> keys;
  uint32_t flags = 0;
  int64_t exptime = 0;
  int64_t delay_s = 0;
  std::string stats_arg;
  std::string data;
  bool noreply = false;
};

class ServerCore : public RequestHandler {
 public:
  explicit ServerCore(const ServerCoreConfig& config,
                      SpotCacheSystem* system = nullptr, Obs* obs = nullptr);

  /// Attaches the serving-path telemetry (non-owning; may be null). The
  /// server wires its RequestTelemetry in here so Handle() can classify
  /// outcomes and stamp route/store phases on sampled requests.
  void set_telemetry(RequestTelemetry* telemetry) override {
    telemetry_ = telemetry;
  }

  /// Executes one request at unix-seconds `now`, appending any reply to
  /// `out` (noreply suppresses success/failure status lines, per protocol).
  /// Returns false when the connection should close (quit).
  bool Handle(const TextRequest& req, int64_t now,
              ResponseAssembler* out) override;

  /// Appends the reply for a parse error (always sent: memcached reports
  /// protocol errors even on noreply commands).
  void HandleParseError(ParseErrorKind kind, ResponseAssembler* out) override;

  /// Makes this core shard `ctx.self` of `ctx.count`: wires the exchange,
  /// the shared cas sequence, and the system serialization. Must be called
  /// before serving starts.
  void ConfigureShard(const ShardContext& ctx);
  bool sharded() const {
    return shard_.exchange != nullptr && shard_.count > 1;
  }
  uint32_t shard_index() const { return shard_.self; }
  uint32_t shard_count() const { return shard_.count; }

  /// Sharded drain: executes one batch of parsed events in order, scattering
  /// remote-key operations ahead (up to the next stats/flush_all/quit
  /// barrier) and reassembling replies in request order. Returns false when
  /// the connection should close (quit).
  bool ExecuteBatch(const std::vector<PendingEvent>& events, int64_t now,
                    ResponseAssembler* out);

  /// Owner-side execution of a cross-shard op against this core's store.
  /// Runs on this core's thread only; publishes the reply via op->done.
  void ExecuteCrossOp(CrossShardOp* op);

  /// Drains this shard's mailbox (loop-top servicing).
  void ServiceInbox();

  /// This shard's aggregatable counter snapshot (thread-safe only on the
  /// owning thread, or after the loop stopped).
  CoreSnapshot Snapshot() const;

  ItemStore& store() { return store_; }
  const ItemStore& store() const { return store_; }

  uint64_t cmd_get() const { return cmd_get_; }
  uint64_t cmd_set() const { return cmd_set_; }
  uint64_t get_hits() const { return get_hits_; }
  uint64_t get_misses() const { return get_misses_; }
  uint64_t sheds() const { return sheds_; }
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  /// (outcome, bytes) classification of one handled request, reported to
  /// the telemetry layer by Handle().
  struct Outcome {
    RequestOutcome outcome = RequestOutcome::kOther;
    uint32_t value_bytes = 0;
  };

  Outcome HandleRetrieve(const TextRequest& req, int64_t now,
                         ResponseAssembler* out);
  Outcome HandleStorage(const TextRequest& req, int64_t now,
                        ResponseAssembler* out);
  void HandleStats(const TextRequest& req, int64_t now,
                   ResponseAssembler* out);
  /// The memcached-compatible stats block (+ spotcache_* resilience lines).
  void AppendDefaultStats(int64_t now, ResponseAssembler* out);
  /// `STAT spotcache_*` resilience lines (breaker states, shed fraction).
  void AppendResilienceStats(ResponseAssembler* out);
  /// The `stats spotcache` extension: telemetry + event-loop health.
  void AppendSpotcacheStats(ResponseAssembler* out);
  /// Consults the attached system's ladder for one keyed operation; reports
  /// who (model-)served it. kDropped means the request should be shed.
  ServedBy GateGet(std::string_view key);
  void GatePut(std::string_view key, size_t bytes);

  // --- Sharded-batch machinery (no-ops when not sharded). ---------------
  /// Scatters remote ops for events [from, barrier) into the batch deque,
  /// wakes the touched shards once, and returns the index scatter should
  /// resume at (always > from).
  size_t ScatterWindow(const std::vector<PendingEvent>& events, size_t from);
  void ScatterEvent(const PendingEvent& ev, size_t index, uint64_t* wake_mask);
  /// The pre-scattered remote op for key position `ki` of the event being
  /// executed (null = local key).
  CrossShardOp* RemoteOp(size_t ki) const {
    return current_event_ops_ != nullptr && ki < current_event_ops_->size()
               ? (*current_event_ops_)[ki]
               : nullptr;
  }
  void AwaitOp(CrossShardOp* op) {
    shard_.exchange->AwaitOp(shard_.self, op);
  }
  /// stats barrier: kSnapshot round-trip to every peer, summed into `total`.
  void GatherPeerSnapshots(CoreSnapshot* total);
  /// flush_all barrier: kFlushAll round-trip to every peer.
  void BroadcastFlush(int64_t now, int64_t delay_s);

  ServerCoreConfig config_;
  ItemStore store_;
  SpotCacheSystem* system_;
  Obs* obs_;
  RequestTelemetry* telemetry_ = nullptr;
  ShardContext shard_;
  int64_t start_time_ = -1;  // first-request time, for the uptime stat

  // Per-batch scratch for the sharded path (reused across batches).
  std::deque<CrossShardOp> batch_ops_;  // stable addresses; awaited in-batch
  std::vector<std::vector<CrossShardOp*>> event_ops_;  // per event, per key
  const std::vector<CrossShardOp*>* current_event_ops_ = nullptr;
  std::vector<std::string_view> key_views_;  // TextRequest reconstruction
  int64_t batch_now_ = 0;

  uint64_t cmd_get_ = 0;
  uint64_t cmd_set_ = 0;
  uint64_t cmd_touch_ = 0;
  uint64_t cmd_delete_ = 0;
  uint64_t cmd_flush_ = 0;
  uint64_t get_hits_ = 0;
  uint64_t get_misses_ = 0;
  uint64_t sheds_ = 0;
  uint64_t protocol_errors_ = 0;

  // Fleet counters (resolved once; null when obs is detached).
  Counter* obs_requests_ = nullptr;
  Counter* obs_get_hits_ = nullptr;
  Counter* obs_get_misses_ = nullptr;
  Counter* obs_sets_ = nullptr;
  Counter* obs_sheds_ = nullptr;
  Counter* obs_protocol_errors_ = nullptr;
};

}  // namespace spotcache::net
