// Transport-independent memcached command execution.
//
// ServerCore turns parsed TextRequests into wire responses against an
// ItemStore, optionally routed through the simulation stack: when a
// SpotCacheSystem is attached, every get/set also flows through
// Router::Route and SpotCacheSystem::Get/Put (string keys hashed to KeyIds),
// so the degradation ladder, circuit breakers, and admission control gate
// real connections. The ItemStore stays authoritative for payload bytes —
// the system models placement, health, and shedding; a ladder decision of
// "shed" turns the reply into SERVER_ERROR instead of serving.
//
// Handle() is a pure function of (request, now, store/system state): no wall
// clock, no I/O, no iteration-order dependence — which is what lets the
// conformance suite run the same tables both in-process and over a socket,
// and the fuzzer compare byte-identical outputs across stream chunkings.

#pragma once

#include <cstdint>
#include <string>

#include "src/net/item_store.h"
#include "src/net/protocol.h"
#include "src/net/response.h"
#include "src/obs/obs.h"
#include "src/routing/hash.h"

namespace spotcache {
class SpotCacheSystem;
}  // namespace spotcache

namespace spotcache::net {

struct ServerCoreConfig {
  size_t capacity_bytes = 64 * 1024 * 1024;
  std::string version = "spotcache-1.6.0";
};

class ServerCore {
 public:
  explicit ServerCore(const ServerCoreConfig& config,
                      SpotCacheSystem* system = nullptr, Obs* obs = nullptr);

  /// Executes one request at unix-seconds `now`, appending any reply to
  /// `out` (noreply suppresses success/failure status lines, per protocol).
  /// Returns false when the connection should close (quit).
  bool Handle(const TextRequest& req, int64_t now, ResponseAssembler* out);

  /// Appends the reply for a parse error (always sent: memcached reports
  /// protocol errors even on noreply commands).
  void HandleParseError(ParseErrorKind kind, ResponseAssembler* out);

  ItemStore& store() { return store_; }
  const ItemStore& store() const { return store_; }

  uint64_t cmd_get() const { return cmd_get_; }
  uint64_t cmd_set() const { return cmd_set_; }
  uint64_t get_hits() const { return get_hits_; }
  uint64_t get_misses() const { return get_misses_; }
  uint64_t sheds() const { return sheds_; }
  uint64_t protocol_errors() const { return protocol_errors_; }

 private:
  void HandleRetrieve(const TextRequest& req, int64_t now,
                      ResponseAssembler* out);
  void HandleStorage(const TextRequest& req, int64_t now,
                     ResponseAssembler* out);
  void HandleStats(int64_t now, ResponseAssembler* out);
  /// Consults the attached system's ladder for one keyed operation.
  /// Returns false when the request should be shed.
  bool GateGet(std::string_view key);
  void GatePut(std::string_view key, size_t bytes);

  ServerCoreConfig config_;
  ItemStore store_;
  SpotCacheSystem* system_;
  int64_t start_time_ = -1;  // first-request time, for the uptime stat

  uint64_t cmd_get_ = 0;
  uint64_t cmd_set_ = 0;
  uint64_t cmd_touch_ = 0;
  uint64_t cmd_delete_ = 0;
  uint64_t cmd_flush_ = 0;
  uint64_t get_hits_ = 0;
  uint64_t get_misses_ = 0;
  uint64_t sheds_ = 0;
  uint64_t protocol_errors_ = 0;

  // Fleet counters (resolved once; null when obs is detached).
  Counter* obs_requests_ = nullptr;
  Counter* obs_get_hits_ = nullptr;
  Counter* obs_get_misses_ = nullptr;
  Counter* obs_sets_ = nullptr;
  Counter* obs_sheds_ = nullptr;
  Counter* obs_protocol_errors_ = nullptr;
};

}  // namespace spotcache::net
