// The memcached text wire protocol: request model, incremental parser, and
// response assembler.
//
// The parser is the serving path's innermost loop, so it is built around two
// rules:
//
//   * Zero-copy, zero-allocation steady state. Bytes land directly in the
//     parser's contiguous ring-style buffer (`WritePtr` / `Commit`, so recv()
//     writes in place); every parsed token — keys, payload — is a
//     string_view into that buffer, valid until the next Feed/Commit. The
//     key scratch vector is reused across requests, so after warm-up a
//     request parse performs no heap allocation.
//
//   * Deterministic and chunking-invariant. Parse decisions depend only on
//     the accumulated byte stream, never on where Feed() boundaries fell, so
//     any chunking of the same stream yields the same request/error sequence
//     (test_protocol_fuzz pins this property). No wall clock, no
//     locale-dependent parsing.
//
// Verbs covered (memcached 1.6 text protocol): get, gets, set, add, replace,
// delete, touch, stats, version, flush_all, quit, plus `noreply` and
// multi-key retrieval. Limits follow memcached: 250-byte keys, 1 MB values.
// Oversized values are swallowed in a streaming state (the buffer never has
// to hold them), then reported as SERVER_ERROR, exactly like memcached.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace spotcache::net {

/// memcached limits (1.6 defaults).
inline constexpr size_t kMaxKeyBytes = 250;
inline constexpr size_t kMaxValueBytes = 1024 * 1024;
/// Commands longer than this are rejected and the parser resyncs at the next
/// newline. Generous enough for multi-get bursts (~60 max-length keys).
inline constexpr size_t kMaxCommandLineBytes = 16 * 1024;

enum class Verb : uint8_t {
  kGet,
  kGets,
  kSet,
  kAdd,
  kReplace,
  kDelete,
  kTouch,
  kStats,
  kVersion,
  kFlushAll,
  kQuit,
};

std::string_view ToString(Verb v);

/// One parsed request. All views point into the parser's buffer and are valid
/// until the next Feed()/Commit() call.
struct TextRequest {
  Verb verb = Verb::kGet;
  /// Retrieval: all requested keys. Storage/delete/touch: exactly one key.
  std::span<const std::string_view> keys;
  uint32_t flags = 0;
  /// Raw exptime token (storage, touch): 0 = never, negative = immediately
  /// expired, <= 30 days = relative seconds, else absolute unix seconds.
  int64_t exptime = 0;
  /// flush_all optional delay in seconds.
  int64_t delay_s = 0;
  /// stats sub-command ("" for plain `stats`; "spotcache" selects the
  /// server-telemetry extension; anything else is accepted and ignored).
  std::string_view stats_arg;
  /// Storage payload (exactly `bytes` from the wire, terminator stripped).
  std::string_view data;
  bool noreply = false;
};

/// Why a request could not be parsed. The server maps these onto the
/// protocol's error replies (ERROR / CLIENT_ERROR ... / SERVER_ERROR ...).
enum class ParseErrorKind : uint8_t {
  kUnknownCommand,   // "ERROR"
  kBadCommandLine,   // "CLIENT_ERROR bad command line format"
  kBadDataChunk,     // "CLIENT_ERROR bad data chunk"
  kObjectTooLarge,   // "SERVER_ERROR object too large for cache"
  kLineTooLong,      // "CLIENT_ERROR bad command line format" (resynced)
};

/// The full reply line (terminated) for an error of the given kind.
std::string_view ErrorReply(ParseErrorKind kind);

std::string_view ToString(ParseErrorKind kind);

enum class ParseStatus : uint8_t {
  kNeedMore,  // not enough bytes buffered for a full request
  kRequest,   // request() holds a complete request
  kError,     // error() holds the failure; the parser has already resynced
};

class RequestParser {
 public:
  RequestParser();

  // --- Input. ----------------------------------------------------------
  /// Appends bytes (copies into the internal buffer).
  void Feed(std::string_view bytes);
  /// Zero-copy input: returns a writable region of at least `want` bytes;
  /// write into it, then Commit() the number actually produced.
  char* WritePtr(size_t want);
  void Commit(size_t produced);

  // --- Parsing. --------------------------------------------------------
  /// Advances past the previous request/error and parses the next one.
  ParseStatus Next();
  const TextRequest& request() const { return request_; }
  ParseErrorKind error() const { return error_; }
  /// Whether the failed command asked for noreply (errors are still
  /// reported on the wire: memcached only suppresses success replies, and a
  /// malformed line's noreply token is untrustworthy anyway).
  bool error_noreply() const { return error_noreply_; }

  /// Bytes buffered but not yet consumed (0 once a stream parsed cleanly).
  size_t buffered() const { return end_ - pos_; }

 private:
  enum class State : uint8_t {
    kCommand,       // scanning for a command line
    kData,          // waiting for <bytes>+CRLF of payload
    kSwallowData,   // discarding an oversized payload
    kSwallowLine,   // discarding an overlong command line
  };

  ParseStatus ParseCommandLine(std::string_view line);
  ParseStatus ParseStorage(Verb verb, std::span<const std::string_view> args);
  ParseStatus EmitError(ParseErrorKind kind, bool noreply = false);
  /// Drops consumed bytes when the live region gets small relative to the
  /// buffer, keeping the buffer bounded without per-request memmoves.
  void Compact();

  std::vector<char> buf_;
  size_t pos_ = 0;  // first unconsumed byte
  size_t end_ = 0;  // one past the last buffered byte

  State state_ = State::kCommand;
  TextRequest request_;
  std::vector<std::string_view> keys_;  // backing storage for request_.keys
  ParseErrorKind error_ = ParseErrorKind::kUnknownCommand;
  bool error_noreply_ = false;

  // kData bookkeeping: the pending storage request (header already parsed).
  // The key is copied into fixed storage: the command line it pointed into
  // may be compacted away while waiting for the payload to arrive.
  Verb pending_verb_ = Verb::kSet;
  char pending_key_[kMaxKeyBytes] = {};
  size_t pending_key_len_ = 0;
  uint32_t pending_flags_ = 0;
  int64_t pending_exptime_ = 0;
  size_t pending_bytes_ = 0;
  bool pending_noreply_ = false;
  size_t swallow_remaining_ = 0;  // kSwallowData / payload+CRLF countdown
};

}  // namespace spotcache::net
