// The server readiness-line contract, in one place.
//
// Every serving binary (spotcache_server, spotcache_proxy) announces its
// bound ports on stdout as machine-readable lines, flushed before any banner
// text:
//
//   listening <port>
//   metrics listening <port>        (only when the scrape listener is on)
//
// ProcessSupervisor (fork/exec launches), the CI smoke jobs, and any harness
// that tails a server's stdout all parse the same two lines. This header is
// the single implementation: strict single-line parsers plus an incremental
// ReadinessParser that accepts arbitrarily segmented stdout reads — partial
// lines, interleaved banner noise, both announcements in one chunk — and
// latches the first valid port of each kind.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace spotcache::net {

/// Parses one complete stdout line (no trailing newline) as the cache
/// readiness announcement `listening <port>`. Strict: exactly one decimal
/// port in [1, 65535], no leading zeros padding tricks, no trailing junk.
std::optional<uint16_t> ParseListeningLine(std::string_view line);

/// Parses one complete stdout line as `metrics listening <port>`.
std::optional<uint16_t> ParseMetricsListeningLine(std::string_view line);

/// Incremental readiness scanner for a child process's stdout stream. Feed()
/// accepts any segmentation of the bytes (single characters, whole buffers,
/// reads that end mid-line); lines that are not readiness announcements are
/// ignored as banner noise. The first valid announcement of each kind wins.
class ReadinessParser {
 public:
  /// Appends one stdout chunk. Returns true if this chunk completed the
  /// cache readiness line (i.e. port() just became available).
  bool Feed(std::string_view chunk);

  /// The announced cache port, once its line has fully arrived.
  std::optional<uint16_t> port() const { return port_; }
  /// The announced metrics port, once its line has fully arrived.
  std::optional<uint16_t> metrics_port() const { return metrics_port_; }

 private:
  std::string pending_;  // bytes after the last newline seen
  std::optional<uint16_t> port_;
  std::optional<uint16_t> metrics_port_;
};

}  // namespace spotcache::net
