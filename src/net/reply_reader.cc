#include "src/net/reply_reader.h"

#include <charconv>

namespace spotcache::net {

namespace {

bool IsErrorLine(std::string_view line) {
  return line == "ERROR" || line.rfind("CLIENT_ERROR", 0) == 0 ||
         line.rfind("SERVER_ERROR", 0) == 0;
}

/// Parses the <bytes> field of "VALUE <key> <flags> <bytes> [<cas>]".
bool ValueBytes(std::string_view line, uint64_t* out) {
  // Fields are single-space separated; bytes is the 4th token.
  size_t pos = 0;
  for (int field = 0; field < 3; ++field) {
    pos = line.find(' ', pos);
    if (pos == std::string_view::npos) {
      return false;
    }
    ++pos;
  }
  size_t end = line.find(' ', pos);
  if (end == std::string_view::npos) {
    end = line.size();
  }
  const auto [ptr, ec] =
      std::from_chars(line.data() + pos, line.data() + end, *out);
  return ec == std::errc() && ptr == line.data() + end;
}

}  // namespace

bool ReplyReader::ConsumeLine(std::string_view line, const Sink& sink) {
  if (pending_.empty()) {
    return false;  // response bytes with nothing outstanding
  }
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  const Expect expect = pending_.front();
  if (IsErrorLine(line)) {
    pending_.pop_front();
    saw_value_ = false;
    sink(Status::kError);
    return true;
  }
  if (expect == Expect::kRetrieval) {
    if (line.rfind("VALUE ", 0) == 0) {
      uint64_t bytes = 0;
      if (!ValueBytes(line, &bytes)) {
        return false;
      }
      skip_bytes_ = bytes + 2;  // payload + CRLF
      saw_value_ = true;
      return true;
    }
    if (line == "END") {
      pending_.pop_front();
      sink(saw_value_ ? Status::kHit : Status::kMiss);
      saw_value_ = false;
      return true;
    }
    return false;
  }
  // kLine: one status line completes the request.
  pending_.pop_front();
  if (line == "NOT_STORED" || line == "NOT_FOUND" || line == "EXISTS") {
    sink(Status::kMiss);
  } else if (line.empty()) {
    return false;
  } else {
    sink(Status::kHit);  // STORED / DELETED / TOUCHED / OK / ...
  }
  return true;
}

bool ReplyReader::Feed(std::string_view bytes, const Sink& sink) {
  while (!bytes.empty()) {
    if (skip_bytes_ > 0) {
      const size_t n = std::min(skip_bytes_, bytes.size());
      skip_bytes_ -= n;
      bytes.remove_prefix(n);
      continue;
    }
    const size_t nl = bytes.find('\n');
    if (nl == std::string_view::npos) {
      partial_.append(bytes);
      return true;
    }
    bool ok;
    if (partial_.empty()) {
      ok = ConsumeLine(bytes.substr(0, nl), sink);
    } else {
      partial_.append(bytes.substr(0, nl));
      ok = ConsumeLine(partial_, sink);
      partial_.clear();
    }
    if (!ok) {
      return false;
    }
    bytes.remove_prefix(nl + 1);
  }
  return true;
}

}  // namespace spotcache::net
