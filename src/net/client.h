// NetClient: a small blocking memcached text-protocol client, used by the
// conformance suite, the loopback bench, and anyone who wants to poke a
// spotcache_server by hand. Not a connection pool — one socket, synchronous
// round trips, explicit timeouts.
//
// For conformance testing there is also a raw path: SendRaw() +
// RoundTripRaw(), which appends a `version` sentinel so arbitrary (even
// malformed or noreply) request bytes can be fenced and their exact response
// bytes captured.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace spotcache::net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  bool Connect(const std::string& host, uint16_t port,
               int timeout_ms = 5000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- Typed helpers (true / value on protocol success). ---------------
  bool Set(std::string_view key, std::string_view value, uint32_t flags = 0,
           int64_t exptime = 0);
  bool Add(std::string_view key, std::string_view value, uint32_t flags = 0,
           int64_t exptime = 0);
  bool Replace(std::string_view key, std::string_view value,
               uint32_t flags = 0, int64_t exptime = 0);

  struct GetResult {
    bool found = false;
    std::string value;
    uint32_t flags = 0;
    uint64_t cas = 0;  // only populated by Gets
  };
  GetResult Get(std::string_view key);
  GetResult Gets(std::string_view key);

  bool Delete(std::string_view key);
  bool Touch(std::string_view key, int64_t exptime);
  bool FlushAll(int64_t delay_s = 0);
  std::optional<std::string> Version();
  std::optional<std::map<std::string, std::string>> Stats();

  // --- Raw access (conformance / fuzz harnesses). ----------------------
  bool SendRaw(std::string_view bytes);
  /// Sends `bytes`, then a `version` sentinel, and returns the exact bytes
  /// the server wrote back before the sentinel's reply ("VERSION
  /// <server_version>\r\n"). Captures responses byte-for-byte even for
  /// noreply commands (which produce nothing). Payloads that themselves end
  /// with the sentinel string would fool the framing; don't do that.
  std::optional<std::string> RoundTripRaw(
      std::string_view bytes, std::string_view server_version = "spotcache-1.6.0");
  /// Reads one CRLF-terminated line (without the terminator).
  std::optional<std::string> ReadLine();
  /// Reads exactly n bytes.
  std::optional<std::string> ReadBytes(size_t n);

 private:
  std::optional<std::string> SimpleCommand(std::string cmd);
  GetResult Retrieve(std::string_view verb, std::string_view key);

  int fd_ = -1;
  std::string rbuf_;  // bytes received but not yet consumed
  size_t rpos_ = 0;
  bool FillMore();
};

}  // namespace spotcache::net
