// NetClient: a small blocking memcached text-protocol client, used by the
// conformance suite, the loopback bench, the fleet warm-up streamer, and
// anyone who wants to poke a spotcache_server by hand. Not a connection pool —
// one socket, synchronous round trips, explicit timeouts.
//
// Transport failures are surfaced as typed NetClientError values (refused /
// reset / pipe / timeout / peer-closed), which is what lets callers like the
// FleetRouter distinguish "the process was SIGKILLed under me" (reset or
// closed: trip the breaker, reconnect to the replacement) from "the server is
// slow" (timeout: back off). Reconnect() re-dials the last Connect() target
// with capped exponential backoff, so a client can ride through a supervisor
// respawning the process behind its endpoint.
//
// For conformance testing there is also a raw path: SendRaw() +
// RoundTripRaw(), which appends a `version` sentinel so arbitrary (even
// malformed or noreply) request bytes can be fenced and their exact response
// bytes captured.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace spotcache::net {

/// Why the last transport operation failed. kNone after any success;
/// protocol-level failures (e.g. NOT_STORED) are not errors — these cover the
/// socket only.
enum class NetClientError : uint8_t {
  kNone,        // no transport failure recorded
  kRefused,     // connect() rejected (ECONNREFUSED / bad address)
  kTimeout,     // SO_RCVTIMEO / SO_SNDTIMEO expired (EAGAIN / ETIMEDOUT)
  kReset,       // ECONNRESET: the peer was killed or dropped us mid-stream
  kPipe,        // EPIPE on send: writing into a dead connection
  kClosed,      // orderly FIN from the peer (recv returned 0)
  kNotConnected,// operation attempted with no socket
  kOther,       // anything else (errno preserved in last_errno())
};

std::string_view ToString(NetClientError e);

/// Backoff schedule for Reconnect(): capped exponential, no jitter (the
/// caller's RetryPolicy owns jittered scheduling when it matters).
struct ReconnectPolicy {
  int max_attempts = 5;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 500;
  double backoff_factor = 2.0;
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  bool Connect(const std::string& host, uint16_t port,
               int timeout_ms = 5000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Re-dials the last Connect() target, sleeping between attempts on the
  /// policy's capped-exponential schedule. Returns true once connected; on
  /// exhaustion last_error() holds the final attempt's failure. Safe to call
  /// while still connected (the old socket is closed first).
  bool Reconnect(const ReconnectPolicy& policy = {});

  /// Last transport failure (kNone after any successful Connect/Reconnect or
  /// completed read/write).
  NetClientError last_error() const { return last_error_; }
  /// The errno captured with last_error() (0 for kClosed / kNotConnected).
  int last_errno() const { return last_errno_; }
  /// Total successful Reconnect() dials over the client's lifetime.
  uint64_t reconnects() const { return reconnects_; }

  // --- Typed helpers (true / value on protocol success). ---------------
  bool Set(std::string_view key, std::string_view value, uint32_t flags = 0,
           int64_t exptime = 0);
  bool Add(std::string_view key, std::string_view value, uint32_t flags = 0,
           int64_t exptime = 0);
  bool Replace(std::string_view key, std::string_view value,
               uint32_t flags = 0, int64_t exptime = 0);

  struct GetResult {
    bool found = false;
    std::string value;
    uint32_t flags = 0;
    uint64_t cas = 0;  // only populated by Gets
  };
  GetResult Get(std::string_view key);
  GetResult Gets(std::string_view key);

  bool Delete(std::string_view key);
  bool Touch(std::string_view key, int64_t exptime);
  bool FlushAll(int64_t delay_s = 0);
  std::optional<std::string> Version();
  std::optional<std::map<std::string, std::string>> Stats();

  // --- Raw access (conformance / fuzz harnesses). ----------------------
  bool SendRaw(std::string_view bytes);
  /// Sends `bytes`, then a `version` sentinel, and returns the exact bytes
  /// the server wrote back before the sentinel's reply ("VERSION
  /// <server_version>\r\n"). Captures responses byte-for-byte even for
  /// noreply commands (which produce nothing). Payloads that themselves end
  /// with the sentinel string would fool the framing; don't do that.
  std::optional<std::string> RoundTripRaw(
      std::string_view bytes, std::string_view server_version = "spotcache-1.6.0");
  /// Reads one CRLF-terminated line (without the terminator).
  std::optional<std::string> ReadLine();
  /// Reads exactly n bytes.
  std::optional<std::string> ReadBytes(size_t n);

 private:
  std::optional<std::string> SimpleCommand(std::string cmd);
  GetResult Retrieve(std::string_view verb, std::string_view key);
  bool DialOnce();
  void RecordError(NetClientError e, int err);

  int fd_ = -1;
  std::string rbuf_;  // bytes received but not yet consumed
  size_t rpos_ = 0;
  bool FillMore();

  // Last Connect() target, for Reconnect().
  std::string host_;
  uint16_t port_ = 0;
  int timeout_ms_ = 5000;

  NetClientError last_error_ = NetClientError::kNone;
  int last_errno_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace spotcache::net
