#include "src/net/protocol.h"

#include <charconv>
#include <cstring>

namespace spotcache::net {

namespace {

/// Returns the next space-delimited token starting at `*pos`, advancing
/// `*pos` past it. Runs of spaces are skipped. Empty view when exhausted.
std::string_view NextToken(std::string_view line, size_t* pos) {
  size_t i = *pos;
  while (i < line.size() && line[i] == ' ') {
    ++i;
  }
  const size_t start = i;
  while (i < line.size() && line[i] != ' ') {
    ++i;
  }
  *pos = i;
  return line.substr(start, i - start);
}

bool ValidKey(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return false;
  }
  for (char c : key) {
    const auto u = static_cast<unsigned char>(c);
    if (u <= 32 || u == 127) {
      return false;
    }
  }
  return true;
}

template <typename Int>
bool ParseInt(std::string_view tok, Int* out) {
  if (tok.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return ec == std::errc() && ptr == tok.data() + tok.size();
}

}  // namespace

std::string_view ToString(Verb v) {
  switch (v) {
    case Verb::kGet: return "get";
    case Verb::kGets: return "gets";
    case Verb::kSet: return "set";
    case Verb::kAdd: return "add";
    case Verb::kReplace: return "replace";
    case Verb::kDelete: return "delete";
    case Verb::kTouch: return "touch";
    case Verb::kStats: return "stats";
    case Verb::kVersion: return "version";
    case Verb::kFlushAll: return "flush_all";
    case Verb::kQuit: return "quit";
  }
  return "?";
}

std::string_view ErrorReply(ParseErrorKind kind) {
  switch (kind) {
    case ParseErrorKind::kUnknownCommand:
      return "ERROR\r\n";
    case ParseErrorKind::kBadCommandLine:
    case ParseErrorKind::kLineTooLong:
      return "CLIENT_ERROR bad command line format\r\n";
    case ParseErrorKind::kBadDataChunk:
      return "CLIENT_ERROR bad data chunk\r\n";
    case ParseErrorKind::kObjectTooLarge:
      return "SERVER_ERROR object too large for cache\r\n";
  }
  return "SERVER_ERROR internal\r\n";
}

std::string_view ToString(ParseErrorKind kind) {
  switch (kind) {
    case ParseErrorKind::kUnknownCommand: return "unknown_command";
    case ParseErrorKind::kBadCommandLine: return "bad_command_line";
    case ParseErrorKind::kBadDataChunk: return "bad_data_chunk";
    case ParseErrorKind::kObjectTooLarge: return "object_too_large";
    case ParseErrorKind::kLineTooLong: return "line_too_long";
  }
  return "?";
}

RequestParser::RequestParser() { buf_.reserve(8192); }

void RequestParser::Compact() {
  if (pos_ == end_) {
    pos_ = end_ = 0;
    return;
  }
  // Slide the live region down once the dead prefix dominates; the threshold
  // keeps the copy amortized O(1) per byte.
  if (pos_ >= 8192 && pos_ >= end_ - pos_) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
}

char* RequestParser::WritePtr(size_t want) {
  Compact();
  if (buf_.size() < end_ + want) {
    buf_.resize(end_ + want);
  }
  return buf_.data() + end_;
}

void RequestParser::Commit(size_t produced) { end_ += produced; }

void RequestParser::Feed(std::string_view bytes) {
  if (bytes.empty()) {
    return;
  }
  std::memcpy(WritePtr(bytes.size()), bytes.data(), bytes.size());
  Commit(bytes.size());
}

ParseStatus RequestParser::EmitError(ParseErrorKind kind, bool noreply) {
  error_ = kind;
  error_noreply_ = noreply;
  state_ = State::kCommand;
  return ParseStatus::kError;
}

ParseStatus RequestParser::Next() {
  for (;;) {
    switch (state_) {
      case State::kCommand: {
        const char* base = buf_.data();
        const void* nl = std::memchr(base + pos_, '\n', end_ - pos_);
        if (nl == nullptr) {
          if (end_ - pos_ > kMaxCommandLineBytes) {
            // The line already exceeds the cap: discard as it streams in and
            // report once the terminator shows up.
            state_ = State::kSwallowLine;
            continue;
          }
          return ParseStatus::kNeedMore;
        }
        const size_t nl_off = static_cast<size_t>(
            static_cast<const char*>(nl) - base);
        std::string_view line(base + pos_, nl_off - pos_);
        if (!line.empty() && line.back() == '\r') {
          line.remove_suffix(1);
        }
        pos_ = nl_off + 1;
        if (line.size() > kMaxCommandLineBytes) {
          return EmitError(ParseErrorKind::kLineTooLong);
        }
        const ParseStatus st = ParseCommandLine(line);
        if (st == ParseStatus::kNeedMore) {
          continue;  // storage header parsed; try for the payload
        }
        return st;
      }

      case State::kData: {
        const size_t need = pending_bytes_ + 2;
        if (end_ - pos_ < need) {
          return ParseStatus::kNeedMore;
        }
        const char* base = buf_.data() + pos_;
        const bool terminated =
            base[pending_bytes_] == '\r' && base[pending_bytes_ + 1] == '\n';
        std::string_view data(base, pending_bytes_);
        pos_ += need;
        state_ = State::kCommand;
        if (!terminated) {
          // The client lied about <bytes>; the declared count has been
          // consumed, so the stream is already resynced.
          return EmitError(ParseErrorKind::kBadDataChunk, pending_noreply_);
        }
        keys_.clear();
        keys_.push_back(std::string_view(pending_key_, pending_key_len_));
        request_ = TextRequest{};
        request_.verb = pending_verb_;
        request_.keys = {keys_.data(), keys_.size()};
        request_.flags = pending_flags_;
        request_.exptime = pending_exptime_;
        request_.data = data;
        request_.noreply = pending_noreply_;
        return ParseStatus::kRequest;
      }

      case State::kSwallowData: {
        const size_t take = std::min(end_ - pos_, swallow_remaining_);
        pos_ += take;
        swallow_remaining_ -= take;
        if (swallow_remaining_ > 0) {
          return ParseStatus::kNeedMore;
        }
        state_ = State::kCommand;
        return EmitError(ParseErrorKind::kObjectTooLarge, pending_noreply_);
      }

      case State::kSwallowLine: {
        const char* base = buf_.data();
        const void* nl = std::memchr(base + pos_, '\n', end_ - pos_);
        if (nl == nullptr) {
          pos_ = end_;  // everything so far belongs to the doomed line
          return ParseStatus::kNeedMore;
        }
        pos_ = static_cast<size_t>(static_cast<const char*>(nl) - base) + 1;
        state_ = State::kCommand;
        return EmitError(ParseErrorKind::kLineTooLong);
      }
    }
  }
}

ParseStatus RequestParser::ParseCommandLine(std::string_view line) {
  size_t cursor = 0;
  const std::string_view verb_tok = NextToken(line, &cursor);
  if (verb_tok.empty()) {
    return EmitError(ParseErrorKind::kUnknownCommand);
  }

  // Collect the remaining tokens. Retrieval keys go straight into the reused
  // keys_ vector; everything else has at most 4 arguments.
  const auto collect_args = [&](std::span<std::string_view> out) -> size_t {
    size_t n = 0;
    for (;;) {
      const std::string_view tok = NextToken(line, &cursor);
      if (tok.empty()) {
        return n;
      }
      if (n == out.size()) {
        return n + 1;  // overflow marker: too many arguments
      }
      out[n++] = tok;
    }
  };

  request_ = TextRequest{};

  if (verb_tok == "get" || verb_tok == "gets") {
    keys_.clear();
    for (;;) {
      const std::string_view tok = NextToken(line, &cursor);
      if (tok.empty()) {
        break;
      }
      if (!ValidKey(tok)) {
        return EmitError(ParseErrorKind::kBadCommandLine);
      }
      keys_.push_back(tok);
    }
    if (keys_.empty()) {
      return EmitError(ParseErrorKind::kUnknownCommand);
    }
    request_.verb = verb_tok == "get" ? Verb::kGet : Verb::kGets;
    request_.keys = {keys_.data(), keys_.size()};
    return ParseStatus::kRequest;
  }

  if (verb_tok == "set" || verb_tok == "add" || verb_tok == "replace") {
    const Verb verb = verb_tok == "set"   ? Verb::kSet
                      : verb_tok == "add" ? Verb::kAdd
                                          : Verb::kReplace;
    std::string_view args[5];
    const size_t n = collect_args(args);
    return ParseStorage(verb, std::span<const std::string_view>(args, n));
  }

  if (verb_tok == "delete") {
    std::string_view args[2];
    const size_t n = collect_args(args);
    if (n < 1 || n > 2 || !ValidKey(args[0]) ||
        (n == 2 && args[1] != "noreply")) {
      return EmitError(ParseErrorKind::kBadCommandLine);
    }
    keys_.clear();
    keys_.push_back(args[0]);
    request_.verb = Verb::kDelete;
    request_.keys = {keys_.data(), keys_.size()};
    request_.noreply = n == 2;
    return ParseStatus::kRequest;
  }

  if (verb_tok == "touch") {
    std::string_view args[3];
    const size_t n = collect_args(args);
    int64_t exptime = 0;
    if (n < 2 || n > 3 || !ValidKey(args[0]) || !ParseInt(args[1], &exptime) ||
        (n == 3 && args[2] != "noreply")) {
      return EmitError(ParseErrorKind::kBadCommandLine);
    }
    keys_.clear();
    keys_.push_back(args[0]);
    request_.verb = Verb::kTouch;
    request_.keys = {keys_.data(), keys_.size()};
    request_.exptime = exptime;
    request_.noreply = n == 3;
    return ParseStatus::kRequest;
  }

  if (verb_tok == "stats") {
    request_.verb = Verb::kStats;
    // First sub-command token, if any ("spotcache" selects the telemetry
    // extension; unknown sub-commands are accepted and ignored).
    request_.stats_arg = NextToken(line, &cursor);
    return ParseStatus::kRequest;
  }

  if (verb_tok == "version") {
    request_.verb = Verb::kVersion;
    return ParseStatus::kRequest;
  }

  if (verb_tok == "flush_all") {
    std::string_view args[2];
    const size_t n = collect_args(args);
    int64_t delay = 0;
    size_t consumed = 0;
    if (n >= 1 && ParseInt(args[0], &delay)) {
      consumed = 1;
    } else {
      delay = 0;
    }
    bool noreply = false;
    if (consumed < n) {
      if (args[consumed] != "noreply" || consumed + 1 != n) {
        return EmitError(ParseErrorKind::kBadCommandLine);
      }
      noreply = true;
    }
    if (delay < 0) {
      return EmitError(ParseErrorKind::kBadCommandLine);
    }
    request_.verb = Verb::kFlushAll;
    request_.delay_s = delay;
    request_.noreply = noreply;
    return ParseStatus::kRequest;
  }

  if (verb_tok == "quit") {
    request_.verb = Verb::kQuit;
    return ParseStatus::kRequest;
  }

  return EmitError(ParseErrorKind::kUnknownCommand);
}

ParseStatus RequestParser::ParseStorage(Verb verb,
                                        std::span<const std::string_view> args) {
  uint64_t flags = 0;
  int64_t exptime = 0;
  int64_t bytes = 0;
  if (args.size() < 4 || args.size() > 5 || !ValidKey(args[0]) ||
      !ParseInt(args[1], &flags) || flags > 0xffffffffULL ||
      !ParseInt(args[2], &exptime) || !ParseInt(args[3], &bytes) || bytes < 0 ||
      (args.size() == 5 && args[4] != "noreply")) {
    return EmitError(ParseErrorKind::kBadCommandLine);
  }
  pending_verb_ = verb;
  std::memcpy(pending_key_, args[0].data(), args[0].size());
  pending_key_len_ = args[0].size();
  pending_flags_ = static_cast<uint32_t>(flags);
  pending_exptime_ = exptime;
  pending_bytes_ = static_cast<size_t>(bytes);
  pending_noreply_ = args.size() == 5;
  if (pending_bytes_ > kMaxValueBytes) {
    // Streamed discard: the payload never has to fit in the buffer.
    swallow_remaining_ = pending_bytes_ + 2;
    state_ = State::kSwallowData;
  } else {
    state_ = State::kData;
  }
  return ParseStatus::kNeedMore;
}

}  // namespace spotcache::net
