#include "src/net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <vector>

namespace spotcache::net {

namespace {

/// Splits `line` on single spaces (no empty tokens).
std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() && line[i] != ' ') {
      ++i;
    }
    if (i > start) {
      out.push_back(line.substr(start, i - start));
    }
  }
  return out;
}

template <typename Int>
bool ToInt(std::string_view tok, Int* out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), *out);
  return ec == std::errc() && ptr == tok.data() + tok.size();
}

NetClientError ClassifyErrno(int err) {
  switch (err) {
    case ECONNREFUSED:
      return NetClientError::kRefused;
    case ECONNRESET:
      return NetClientError::kReset;
    case EPIPE:
      return NetClientError::kPipe;
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ETIMEDOUT:
    case EINPROGRESS:
      return NetClientError::kTimeout;
    default:
      return NetClientError::kOther;
  }
}

void SleepMs(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000L;
  ::nanosleep(&ts, nullptr);
}

}  // namespace

std::string_view ToString(NetClientError e) {
  switch (e) {
    case NetClientError::kNone:
      return "none";
    case NetClientError::kRefused:
      return "refused";
    case NetClientError::kTimeout:
      return "timeout";
    case NetClientError::kReset:
      return "reset";
    case NetClientError::kPipe:
      return "pipe";
    case NetClientError::kClosed:
      return "closed";
    case NetClientError::kNotConnected:
      return "not_connected";
    case NetClientError::kOther:
      return "other";
  }
  return "unknown";
}

NetClient::~NetClient() { Close(); }

void NetClient::RecordError(NetClientError e, int err) {
  last_error_ = e;
  last_errno_ = err;
}

bool NetClient::DialOnce() {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    RecordError(NetClientError::kOther, errno);
    return false;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    RecordError(NetClientError::kRefused, 0);
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    RecordError(ClassifyErrno(errno), errno);
    Close();
    return false;
  }
  RecordError(NetClientError::kNone, 0);
  return true;
}

bool NetClient::Connect(const std::string& host, uint16_t port,
                        int timeout_ms) {
  host_ = host;
  port_ = port;
  timeout_ms_ = timeout_ms;
  return DialOnce();
}

bool NetClient::Reconnect(const ReconnectPolicy& policy) {
  if (host_.empty()) {
    RecordError(NetClientError::kNotConnected, 0);
    return false;
  }
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int attempt = 1; attempt <= std::max(policy.max_attempts, 1);
       ++attempt) {
    if (DialOnce()) {
      ++reconnects_;
      return true;
    }
    if (attempt == policy.max_attempts) {
      break;
    }
    SleepMs(static_cast<int>(backoff));
    backoff = std::min(backoff * policy.backoff_factor,
                       static_cast<double>(policy.max_backoff_ms));
  }
  return false;
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
  rpos_ = 0;
}

bool NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) {
    RecordError(NetClientError::kNotConnected, 0);
    return false;
  }
  // Each operation starts with a clean slate so last_error() always refers
  // to the most recent round trip, not a stale, already-recovered failure.
  RecordError(NetClientError::kNone, 0);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      RecordError(n < 0 ? ClassifyErrno(errno) : NetClientError::kClosed,
                  n < 0 ? errno : 0);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool NetClient::FillMore() {
  if (fd_ < 0) {
    RecordError(NetClientError::kNotConnected, 0);
    return false;
  }
  char chunk[16 * 1024];
  const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
  if (n < 0) {
    RecordError(ClassifyErrno(errno), errno);
    return false;
  }
  if (n == 0) {
    RecordError(NetClientError::kClosed, 0);
    return false;
  }
  // Compact the consumed prefix before growing.
  if (rpos_ > 0) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
  rbuf_.append(chunk, static_cast<size_t>(n));
  return true;
}

std::optional<std::string> NetClient::ReadLine() {
  for (;;) {
    const size_t nl = rbuf_.find('\n', rpos_);
    if (nl != std::string::npos) {
      std::string line = rbuf_.substr(rpos_, nl - rpos_);
      rpos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      return line;
    }
    if (!FillMore()) {
      return std::nullopt;
    }
  }
}

std::optional<std::string> NetClient::ReadBytes(size_t n) {
  while (rbuf_.size() - rpos_ < n) {
    if (!FillMore()) {
      return std::nullopt;
    }
  }
  std::string out = rbuf_.substr(rpos_, n);
  rpos_ += n;
  return out;
}

std::optional<std::string> NetClient::RoundTripRaw(
    std::string_view bytes, std::string_view server_version) {
  std::string framed(bytes);
  framed += "version\r\n";
  if (!SendRaw(framed)) {
    return std::nullopt;
  }
  const std::string sentinel =
      "VERSION " + std::string(server_version) + "\r\n";
  // Accumulate raw bytes until the stream ends with the sentinel reply;
  // everything before it is the response to `bytes`, captured verbatim.
  std::string captured;
  for (;;) {
    captured.append(rbuf_, rpos_, rbuf_.size() - rpos_);
    rpos_ = rbuf_.size();
    if (captured.size() >= sentinel.size() &&
        captured.compare(captured.size() - sentinel.size(), sentinel.size(),
                         sentinel) == 0) {
      captured.resize(captured.size() - sentinel.size());
      return captured;
    }
    if (!FillMore()) {
      return std::nullopt;
    }
  }
}

std::optional<std::string> NetClient::SimpleCommand(std::string cmd) {
  cmd += "\r\n";
  if (!SendRaw(cmd)) {
    return std::nullopt;
  }
  return ReadLine();
}

bool NetClient::Set(std::string_view key, std::string_view value,
                    uint32_t flags, int64_t exptime) {
  std::string cmd = "set " + std::string(key) + " " + std::to_string(flags) +
                    " " + std::to_string(exptime) + " " +
                    std::to_string(value.size()) + "\r\n";
  cmd += value;
  cmd += "\r\n";
  if (!SendRaw(cmd)) {
    return false;
  }
  return ReadLine() == "STORED";
}

bool NetClient::Add(std::string_view key, std::string_view value,
                    uint32_t flags, int64_t exptime) {
  std::string cmd = "add " + std::string(key) + " " + std::to_string(flags) +
                    " " + std::to_string(exptime) + " " +
                    std::to_string(value.size()) + "\r\n";
  cmd += value;
  cmd += "\r\n";
  if (!SendRaw(cmd)) {
    return false;
  }
  return ReadLine() == "STORED";
}

bool NetClient::Replace(std::string_view key, std::string_view value,
                        uint32_t flags, int64_t exptime) {
  std::string cmd = "replace " + std::string(key) + " " +
                    std::to_string(flags) + " " + std::to_string(exptime) +
                    " " + std::to_string(value.size()) + "\r\n";
  cmd += value;
  cmd += "\r\n";
  if (!SendRaw(cmd)) {
    return false;
  }
  return ReadLine() == "STORED";
}

NetClient::GetResult NetClient::Retrieve(std::string_view verb,
                                         std::string_view key) {
  GetResult result;
  std::string cmd = std::string(verb) + " " + std::string(key) + "\r\n";
  if (!SendRaw(cmd)) {
    return result;
  }
  for (;;) {
    auto line = ReadLine();
    if (!line.has_value() || *line == "END") {
      return result;
    }
    const auto toks = Tokens(*line);
    if (toks.size() < 4 || toks[0] != "VALUE") {
      return result;  // protocol error; caller sees found = false
    }
    uint64_t bytes = 0;
    if (!ToInt(toks[2], &result.flags) || !ToInt(toks[3], &bytes)) {
      return result;
    }
    if (toks.size() >= 5) {
      ToInt(toks[4], &result.cas);
    }
    auto data = ReadBytes(bytes + 2);  // payload + CRLF
    if (!data.has_value()) {
      return result;
    }
    data->resize(bytes);
    result.value = std::move(*data);
    result.found = true;
  }
}

NetClient::GetResult NetClient::Get(std::string_view key) {
  return Retrieve("get", key);
}

NetClient::GetResult NetClient::Gets(std::string_view key) {
  return Retrieve("gets", key);
}

bool NetClient::Delete(std::string_view key) {
  return SimpleCommand("delete " + std::string(key)) == "DELETED";
}

bool NetClient::Touch(std::string_view key, int64_t exptime) {
  return SimpleCommand("touch " + std::string(key) + " " +
                       std::to_string(exptime)) == "TOUCHED";
}

bool NetClient::FlushAll(int64_t delay_s) {
  return SimpleCommand(delay_s > 0 ? "flush_all " + std::to_string(delay_s)
                                   : "flush_all") == "OK";
}

std::optional<std::string> NetClient::Version() {
  auto line = SimpleCommand("version");
  if (!line.has_value() || line->rfind("VERSION ", 0) != 0) {
    return std::nullopt;
  }
  return line->substr(8);
}

std::optional<std::map<std::string, std::string>> NetClient::Stats() {
  if (!SendRaw("stats\r\n")) {
    return std::nullopt;
  }
  std::map<std::string, std::string> stats;
  for (;;) {
    auto line = ReadLine();
    if (!line.has_value()) {
      return std::nullopt;
    }
    if (*line == "END") {
      return stats;
    }
    const auto toks = Tokens(*line);
    if (toks.size() >= 3 && toks[0] == "STAT") {
      stats.emplace(std::string(toks[1]), std::string(toks[2]));
    }
  }
}

}  // namespace spotcache::net
