// The request-execution seam between NetServer's transport loop and whoever
// answers the protocol.
//
// NetServer parses bytes into TextRequests and hands each one to a
// RequestHandler; ServerCore (the local cache) is the default
// implementation, and ProxyCore (src/proxy) substitutes a fan-out to a fleet
// of upstreams behind the identical wire surface. The contract mirrors
// ServerCore exactly:
//
//   * Handle() appends the complete reply bytes for one request (noreply
//     suppression is the handler's job) and returns false when the
//     connection should close (quit).
//   * HandleParseError() appends the error reply for a malformed command —
//     always sent, even under noreply.
//   * set_telemetry() receives the server's RequestTelemetry so the handler
//     can classify (op, outcome) per request; handlers may ignore it.
//
// Handlers run on the server's loop thread only — no locking required, and
// a handler that blocks stalls the whole loop (ProxyCore bounds its upstream
// waits with per-operation timeouts for exactly this reason).

#pragma once

#include <cstdint>

#include "src/net/protocol.h"
#include "src/net/response.h"
#include "src/obs/request_telemetry.h"

namespace spotcache::net {

class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  /// Executes one request at unix-seconds `now`, appending the reply to
  /// `out`. Returns false when the connection should close (quit).
  virtual bool Handle(const TextRequest& req, int64_t now,
                      ResponseAssembler* out) = 0;

  /// Appends the reply for a parse error (always sent, even on noreply).
  virtual void HandleParseError(ParseErrorKind kind,
                                ResponseAssembler* out) = 0;

  /// Attaches the serving-path telemetry (non-owning; may be null).
  virtual void set_telemetry(RequestTelemetry* telemetry) { (void)telemetry; }
};

}  // namespace spotcache::net
