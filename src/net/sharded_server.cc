#include "src/net/sharded_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "src/util/logging.h"

namespace spotcache::net {

namespace {

bool ReusePortSupported() {
#ifdef SO_REUSEPORT
  return true;
#else
  return false;
#endif
}

void PinToCore(uint32_t shard) {
#ifdef __linux__
  const unsigned ncores = std::thread::hardware_concurrency();
  if (ncores == 0) {
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(shard % ncores, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)shard;
#endif
}

}  // namespace

ShardedServer::ShardedServer(const ShardedServerConfig& config,
                             SpotCacheSystem* system, Obs* system_obs)
    : config_(config),
      system_(system),
      system_obs_(system_obs),
      shard_count_(std::clamp<uint32_t>(config.threads, 1, kMaxShards)),
      exchange_(shard_count_),
      hub_(static_cast<size_t>(shard_count_) + 1, shard_count_) {}

bool ShardedServer::Start() {
  using_reuseport_ = shard_count_ > 1 && !config_.force_dispatch &&
                     ReusePortSupported();
  const size_t per_shard_capacity =
      std::max<size_t>(config_.base.core.capacity_bytes / shard_count_, 1);
  for (uint32_t i = 0; i < shard_count_; ++i) {
    NetServerConfig c = config_.base;
    c.core.capacity_bytes = per_shard_capacity;
    if (i > 0) {
      // The scrape listener, metrics dump file, and trace surface live on
      // shard 0; peers keep only their private registries + the shared span
      // file.
      c.metrics_port = -1;
      c.metrics_dump_path.clear();
      // Peers of an ephemeral shard 0 must bind the port it resolved.
      c.port = shards_[0]->port();
      if (!using_reuseport_) {
        c.skip_cache_listener = true;
      }
    }
    c.reuse_port = using_reuseport_;
    shard_obs_.push_back(std::make_unique<Obs>());
    // Per-shard tracers inherit the system tracer's enablement: each ring is
    // only ever touched by its owning reactor thread, and the shutdown path
    // concatenates the per-shard JSONL streams into the one trace file.
    shard_obs_.back()->tracer.set_enabled(system_obs_ != nullptr &&
                                          system_obs_->tracer.enabled());
    auto shard =
        std::make_unique<NetServer>(c, system_, shard_obs_.back().get());
    if (clock_) {
      shard->SetClock(clock_);
    }
    if (shard_count_ > 1) {
      ShardContext ctx;
      ctx.self = i;
      ctx.count = shard_count_;
      ctx.exchange = &exchange_;
      if (system_ != nullptr) {
        ctx.system_mu = &system_mu_;
        ctx.system_obs = system_obs_;
      }
      shard->ConfigureShard(ctx);
      shard->AttachMetricsHub(&hub_, i);
      shard->SetDumpMutex(&dump_mu_);
      if (!using_reuseport_ && i == 0) {
        shard->SetDispatcher(true);
      }
    }
    if (!shard->Start()) {
      SPOTCACHE_LOG(kError) << "shard " << i << " failed to start";
      shards_.clear();
      shard_obs_.clear();
      return false;
    }
    shards_.push_back(std::move(shard));
  }
  if (shard_count_ > 1) {
    for (uint32_t i = 0; i < shard_count_; ++i) {
      exchange_.SetWakeFd(i, shards_[i]->wake_fd());
      exchange_.SetExecutor(i, [s = shards_[i].get()](CrossShardOp* op) {
        s->ExecuteShardOp(op);
      });
    }
  }
  return true;
}

bool ShardedServer::Run() {
  if (shards_.size() == 1) {
    return shards_[0]->Run();
  }
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (uint32_t i = 0; i < shard_count_; ++i) {
    threads.emplace_back([this, i, &ok] {
      if (config_.pin_threads) {
        PinToCore(i);
      }
      if (!shards_[i]->Run()) {
        ok.store(false, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  return ok.load(std::memory_order_relaxed);
}

void ShardedServer::Stop() {
  for (auto& shard : shards_) {
    shard->Stop();
  }
}

void ShardedServer::RequestTelemetryDump() {
  for (auto& shard : shards_) {
    shard->RequestTelemetryDump();
  }
}

void ShardedServer::SetClock(std::function<int64_t()> now_unix) {
  clock_ = std::move(now_unix);
  for (auto& shard : shards_) {
    shard->SetClock(clock_);
  }
}

CoreSnapshot ShardedServer::TotalSnapshot() const {
  CoreSnapshot total;
  for (const auto& shard : shards_) {
    const CoreSnapshot s = shard->core().Snapshot();
    total.curr_items += s.curr_items;
    total.bytes_used += s.bytes_used;
    total.capacity_bytes += s.capacity_bytes;
    total.evictions += s.evictions;
    total.expired_reaped += s.expired_reaped;
    total.cmd_get += s.cmd_get;
    total.cmd_set += s.cmd_set;
    total.cmd_touch += s.cmd_touch;
    total.cmd_delete += s.cmd_delete;
    total.cmd_flush += s.cmd_flush;
    total.get_hits += s.get_hits;
    total.get_misses += s.get_misses;
    total.sheds += s.sheds;
    total.protocol_errors += s.protocol_errors;
    if (s.start_time >= 0 &&
        (total.start_time < 0 || s.start_time < total.start_time)) {
      total.start_time = s.start_time;
    }
  }
  return total;
}

}  // namespace spotcache::net
