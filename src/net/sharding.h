// Cross-shard plumbing for the multi-core serving path.
//
// The sharded server runs N reactor threads, each owning a private epoll
// loop, a private ItemStore partition, and private telemetry. Keys are
// assigned to shards by the same splitmix64-finalized hash the telemetry and
// routing tiers already compute (HashString): ShardOfKey is a pure function
// of (key, shard_count), so the assignment is stable across restarts and
// identical in the server, the tests, and any external tooling.
//
// Connections, however, land on arbitrary shards (SO_REUSEPORT spreads them
// by 4-tuple), so a request handled by shard A may name keys owned by shard
// B. Those operations travel through a bounded SPSC mailbox per ordered
// shard pair: A fills a CrossShardOp, pushes a pointer into ring (A -> B),
// and B executes it against its own store on its own thread. Only the two
// ring indices and the op's `done` flag are atomic; item payloads cross
// threads as shared_ptr<const string> (immutable, refcounted), and the
// release/acquire pair on `done` publishes the reply fields. Shard-local
// operations — the common case the partition function is chosen for — touch
// no atomics at all.
//
// Deadlock freedom: a shard waiting for a reply keeps servicing its own
// inbox (executing other shards' ops, which are purely store-local and never
// recurse into the exchange), so two shards waiting on each other both make
// progress. At shutdown every shard drains its inbox until all shards have
// left their loops (NotifyStopped/AllStopped), so a waiter is never stranded
// by a peer that exited first.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/routing/hash.h"

namespace spotcache::net {

/// Key -> owning shard. Splitmix64-finalized (HashString), modulo-mapped;
/// pure, so the assignment survives restarts and is testable in isolation.
inline uint32_t ShardOfKey(std::string_view key, uint32_t shard_count) {
  if (shard_count <= 1) {
    return 0;
  }
  return static_cast<uint32_t>(HashString(key) % shard_count);
}

/// Aggregatable counter snapshot of one shard's ServerCore + ItemStore,
/// filled by the owning thread (kSnapshot op) so `stats` sums are coherent.
struct CoreSnapshot {
  uint64_t curr_items = 0;
  uint64_t bytes_used = 0;
  uint64_t capacity_bytes = 0;
  uint64_t evictions = 0;
  uint64_t expired_reaped = 0;
  uint64_t cmd_get = 0;
  uint64_t cmd_set = 0;
  uint64_t cmd_touch = 0;
  uint64_t cmd_delete = 0;
  uint64_t cmd_flush = 0;
  uint64_t get_hits = 0;
  uint64_t get_misses = 0;
  uint64_t sheds = 0;
  uint64_t protocol_errors = 0;
  int64_t start_time = -1;
};

/// One cross-shard operation. Allocated by the requesting shard (stable
/// address until the batch ends), executed by the owning shard. Request
/// fields are published by the ring push (release on the ring tail); reply
/// fields are published by `done` (release store / acquire load).
struct CrossShardOp {
  enum class Kind : uint8_t {
    kGet,       // key -> found/flags/cas/data
    kSet,       // key+flags+exptime+data -> stored
    kAdd,
    kReplace,
    kDelete,    // key -> found (deleted-live)
    kTouch,     // key+exptime -> found
    kFlushAll,  // now+delay broadcast
    kSnapshot,  // -> CoreSnapshot (coherent `stats` aggregation)
    kAdoptConn, // fd handoff (hash-dispatch accept fallback)
  };

  Kind kind = Kind::kGet;
  std::string key;
  std::string data;
  uint32_t flags = 0;
  int64_t exptime = 0;
  int64_t delay_s = 0;
  int64_t now = 0;  // requester's expiry clock, so views stay consistent
  int fd = -1;      // kAdoptConn

  // Reply (owner-written, valid after `done` reads true).
  bool found = false;
  bool stored = false;
  uint32_t rflags = 0;
  uint64_t rcas = 0;
  std::shared_ptr<const std::string> rdata;
  CoreSnapshot snapshot;

  std::atomic<bool> done{false};
};

/// Bounded single-producer single-consumer pointer ring. Producer is the
/// requesting shard, consumer the owning shard; each (from, to) pair gets
/// its own ring, which is what makes the SPSC contract hold.
class SpscOpRing {
 public:
  explicit SpscOpRing(size_t capacity) : slots_(capacity) {}

  bool Push(CrossShardOp* op) {
    const size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;  // full: caller services its own inbox and retries
    }
    slots_[t % slots_.size()].store(op, std::memory_order_relaxed);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  CrossShardOp* Pop() {
    const size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) {
      return nullptr;
    }
    CrossShardOp* op = slots_[h % slots_.size()].load(std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
    return op;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
  std::vector<std::atomic<CrossShardOp*>> slots_;
};

/// The N x N mailbox fabric plus per-shard executors and wakeups.
class ShardExchange {
 public:
  explicit ShardExchange(uint32_t shard_count, size_t ring_capacity = 256);

  uint32_t shard_count() const { return shard_count_; }

  /// Installs shard `self`'s op executor (called from ServiceInbox on the
  /// owning thread). Must be set before the shard's loop starts.
  void SetExecutor(uint32_t self, std::function<void(CrossShardOp*)> fn);
  /// Registers shard `to`'s eventfd so producers can interrupt its
  /// epoll_wait after pushing ops.
  void SetWakeFd(uint32_t to, int fd);

  /// Enqueues `op` for shard `to`. Blocks (servicing `from`'s own inbox, so
  /// no deadlock) while the ring is full. Does NOT wake the target; callers
  /// batch pushes and call Wake(to) once per scatter.
  void Submit(uint32_t from, uint32_t to, CrossShardOp* op);

  /// eventfd nudge so a sleeping shard notices its inbox.
  void Wake(uint32_t to);

  /// Pops and executes every op currently queued for shard `self`.
  /// Returns the number of ops serviced. Called from the owning thread only.
  size_t ServiceInbox(uint32_t self);

  /// Spin-waits for `op->done`, servicing `self`'s inbox between polls so
  /// mutually-waiting shards make progress.
  void AwaitOp(uint32_t self, CrossShardOp* op);

  /// Shutdown protocol: each shard calls NotifyStopped() when it leaves its
  /// loop, then keeps servicing its inbox until AllStopped() — after which
  /// no new ops can exist (every op is awaited within its creating batch).
  void NotifyStopped();
  bool AllStopped() const {
    return stopped_.load(std::memory_order_acquire) >= shard_count_;
  }

  /// The global cas sequence shared by all shard ItemStores, so cas values
  /// stay unique (and, for sequential clients, identical to the
  /// single-threaded server's).
  std::atomic<uint64_t>* shared_cas() { return &shared_cas_; }

 private:
  SpscOpRing& ring(uint32_t from, uint32_t to) {
    return *rings_[from * shard_count_ + to];
  }

  uint32_t shard_count_;
  std::vector<std::unique_ptr<SpscOpRing>> rings_;  // [from * N + to]
  std::vector<std::function<void(CrossShardOp*)>> executors_;
  std::vector<int> wake_fds_;
  std::atomic<uint32_t> stopped_{0};
  std::atomic<uint64_t> shared_cas_{0};
};

}  // namespace spotcache::net
