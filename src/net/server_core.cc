#include "src/net/server_core.h"

#include <inttypes.h>

#include "src/core/system.h"

namespace spotcache::net {

ServerCore::ServerCore(const ServerCoreConfig& config, SpotCacheSystem* system,
                       Obs* obs)
    : config_(config), store_(config.capacity_bytes), system_(system) {
  if (obs != nullptr) {
    obs_requests_ = obs->registry.GetCounter("net/requests");
    obs_get_hits_ = obs->registry.GetCounter("net/get_hits");
    obs_get_misses_ = obs->registry.GetCounter("net/get_misses");
    obs_sets_ = obs->registry.GetCounter("net/sets");
    obs_sheds_ = obs->registry.GetCounter("net/sheds");
    obs_protocol_errors_ = obs->registry.GetCounter("net/protocol_errors");
  }
}

bool ServerCore::GateGet(std::string_view key) {
  if (system_ == nullptr) {
    return true;
  }
  const CacheResponse r = system_->Get(HashString(key));
  return r.served_by != ServedBy::kDropped;
}

void ServerCore::GatePut(std::string_view key, size_t bytes) {
  if (system_ == nullptr) {
    return;
  }
  system_->Put(HashString(key), static_cast<uint32_t>(bytes));
}

void ServerCore::HandleRetrieve(const TextRequest& req, int64_t now,
                                ResponseAssembler* out) {
  const bool with_cas = req.verb == Verb::kGets;
  for (std::string_view key : req.keys) {
    ++cmd_get_;
    if (!GateGet(key)) {
      // The ladder shed this key: fail the whole retrieval loudly rather
      // than silently reporting a miss — clients must see backpressure.
      ++sheds_;
      if (obs_sheds_ != nullptr) {
        obs_sheds_->Increment();
      }
      out->Append("SERVER_ERROR temporarily overloaded\r\n");
      return;
    }
    const Item* item = store_.Get(key, now);
    if (item == nullptr) {
      ++get_misses_;
      if (obs_get_misses_ != nullptr) {
        obs_get_misses_->Increment();
      }
      continue;
    }
    ++get_hits_;
    if (obs_get_hits_ != nullptr) {
      obs_get_hits_->Increment();
    }
    if (with_cas) {
      out->Appendf("VALUE %.*s %u %zu %" PRIu64 "\r\n",
                   static_cast<int>(key.size()), key.data(), item->flags,
                   item->data->size(), item->cas);
    } else {
      out->Appendf("VALUE %.*s %u %zu\r\n", static_cast<int>(key.size()),
                   key.data(), item->flags, item->data->size());
    }
    out->AppendPinned(*item->data, item->data);
    out->Append("\r\n");
  }
  out->Append("END\r\n");
}

void ServerCore::HandleStorage(const TextRequest& req, int64_t now,
                               ResponseAssembler* out) {
  ++cmd_set_;
  if (obs_sets_ != nullptr) {
    obs_sets_->Increment();
  }
  const std::string_view key = req.keys[0];
  ItemStore::StoreResult result = ItemStore::StoreResult::kNotStored;
  switch (req.verb) {
    case Verb::kSet:
      result = store_.Set(key, req.flags, req.exptime, req.data, now);
      break;
    case Verb::kAdd:
      result = store_.Add(key, req.flags, req.exptime, req.data, now);
      break;
    case Verb::kReplace:
      result = store_.Replace(key, req.flags, req.exptime, req.data, now);
      break;
    default:
      break;
  }
  if (result == ItemStore::StoreResult::kStored) {
    GatePut(key, req.data.size());
  }
  if (!req.noreply) {
    out->Append(result == ItemStore::StoreResult::kStored ? "STORED\r\n"
                                                          : "NOT_STORED\r\n");
  }
}

void ServerCore::HandleStats(int64_t now, ResponseAssembler* out) {
  const auto stat_u = [out](const char* name, uint64_t v) {
    out->Appendf("STAT %s %" PRIu64 "\r\n", name, v);
  };
  out->Appendf("STAT version %s\r\n", config_.version.c_str());
  stat_u("uptime",
         start_time_ >= 0 ? static_cast<uint64_t>(now - start_time_) : 0);
  stat_u("curr_items", store_.item_count());
  stat_u("bytes", store_.bytes_used());
  stat_u("limit_maxbytes", store_.capacity_bytes());
  stat_u("cmd_get", cmd_get_);
  stat_u("cmd_set", cmd_set_);
  stat_u("cmd_touch", cmd_touch_);
  stat_u("cmd_delete", cmd_delete_);
  stat_u("cmd_flush", cmd_flush_);
  stat_u("get_hits", get_hits_);
  stat_u("get_misses", get_misses_);
  stat_u("evictions", store_.evictions());
  stat_u("expired_unfetched", store_.expired_reaped());
  stat_u("sheds", sheds_);
  stat_u("protocol_errors", protocol_errors_);
  out->Append("END\r\n");
}

bool ServerCore::Handle(const TextRequest& req, int64_t now,
                        ResponseAssembler* out) {
  if (start_time_ < 0) {
    start_time_ = now;
  }
  if (obs_requests_ != nullptr) {
    obs_requests_->Increment();
  }
  switch (req.verb) {
    case Verb::kGet:
    case Verb::kGets:
      HandleRetrieve(req, now, out);
      return true;

    case Verb::kSet:
    case Verb::kAdd:
    case Verb::kReplace:
      HandleStorage(req, now, out);
      return true;

    case Verb::kDelete: {
      ++cmd_delete_;
      const bool deleted = store_.Delete(req.keys[0], now);
      if (!req.noreply) {
        out->Append(deleted ? "DELETED\r\n" : "NOT_FOUND\r\n");
      }
      return true;
    }

    case Verb::kTouch: {
      ++cmd_touch_;
      const bool touched = store_.Touch(req.keys[0], req.exptime, now);
      if (!req.noreply) {
        out->Append(touched ? "TOUCHED\r\n" : "NOT_FOUND\r\n");
      }
      return true;
    }

    case Verb::kStats:
      HandleStats(now, out);
      return true;

    case Verb::kVersion:
      out->Appendf("VERSION %s\r\n", config_.version.c_str());
      return true;

    case Verb::kFlushAll:
      ++cmd_flush_;
      store_.FlushAll(now, req.delay_s);
      if (!req.noreply) {
        out->Append("OK\r\n");
      }
      return true;

    case Verb::kQuit:
      return false;
  }
  return true;
}

void ServerCore::HandleParseError(ParseErrorKind kind, ResponseAssembler* out) {
  ++protocol_errors_;
  if (obs_protocol_errors_ != nullptr) {
    obs_protocol_errors_->Increment();
  }
  out->Append(ErrorReply(kind));
}

}  // namespace spotcache::net
