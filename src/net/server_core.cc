#include "src/net/server_core.h"

#include <inttypes.h>

#include "src/core/system.h"

namespace spotcache::net {

namespace {

TelemetryOp OpFor(Verb verb) {
  switch (verb) {
    case Verb::kGet:
    case Verb::kGets:
      return TelemetryOp::kGet;
    case Verb::kSet:
    case Verb::kAdd:
    case Verb::kReplace:
      return TelemetryOp::kSet;
    case Verb::kDelete:
      return TelemetryOp::kDelete;
    case Verb::kTouch:
      return TelemetryOp::kTouch;
    default:
      return TelemetryOp::kOther;
  }
}

}  // namespace

ServerCore::ServerCore(const ServerCoreConfig& config, SpotCacheSystem* system,
                       Obs* obs)
    : config_(config),
      store_(config.capacity_bytes),
      system_(system),
      obs_(obs) {
  if (obs != nullptr) {
    obs_requests_ = obs->registry.GetCounter("net/requests");
    obs_get_hits_ = obs->registry.GetCounter("net/get_hits");
    obs_get_misses_ = obs->registry.GetCounter("net/get_misses");
    obs_sets_ = obs->registry.GetCounter("net/sets");
    obs_sheds_ = obs->registry.GetCounter("net/sheds");
    obs_protocol_errors_ = obs->registry.GetCounter("net/protocol_errors");
  }
}

ServedBy ServerCore::GateGet(std::string_view key) {
  if (system_ == nullptr) {
    return ServedBy::kCacheNode;
  }
  const CacheResponse r = system_->Get(HashString(key));
  return r.served_by;
}

void ServerCore::GatePut(std::string_view key, size_t bytes) {
  if (system_ == nullptr) {
    return;
  }
  system_->Put(HashString(key), static_cast<uint32_t>(bytes));
}

ServerCore::Outcome ServerCore::HandleRetrieve(const TextRequest& req,
                                               int64_t now,
                                               ResponseAssembler* out) {
  const bool with_cas = req.verb == Verb::kGets;
  const bool time_route =
      system_ != nullptr && telemetry_ != nullptr && telemetry_->span_active();
  Outcome result{RequestOutcome::kHit, 0};
  for (std::string_view key : req.keys) {
    ++cmd_get_;
    ServedBy served;
    if (time_route) {
      const int64_t t0 = RequestTelemetry::NowMicros();
      served = GateGet(key);
      telemetry_->AddRouteTime(RequestTelemetry::NowMicros() - t0);
    } else {
      served = GateGet(key);
    }
    if (served == ServedBy::kDropped) {
      // The ladder shed this key: fail the whole retrieval loudly rather
      // than silently reporting a miss — clients must see backpressure.
      ++sheds_;
      if (obs_sheds_ != nullptr) {
        obs_sheds_->Increment();
      }
      out->Append("SERVER_ERROR temporarily overloaded\r\n");
      result.outcome = RequestOutcome::kShed;
      return result;
    }
    if (served == ServedBy::kBackup) {
      result.outcome = RequestOutcome::kBackup;
    }
    const Item* item = store_.Get(key, now);
    if (item == nullptr) {
      ++get_misses_;
      if (obs_get_misses_ != nullptr) {
        obs_get_misses_->Increment();
      }
      if (result.outcome == RequestOutcome::kHit) {
        result.outcome = RequestOutcome::kMiss;
      }
      continue;
    }
    ++get_hits_;
    if (obs_get_hits_ != nullptr) {
      obs_get_hits_->Increment();
    }
    result.value_bytes += static_cast<uint32_t>(item->data->size());
    if (with_cas) {
      out->Appendf("VALUE %.*s %u %zu %" PRIu64 "\r\n",
                   static_cast<int>(key.size()), key.data(), item->flags,
                   item->data->size(), item->cas);
    } else {
      out->Appendf("VALUE %.*s %u %zu\r\n", static_cast<int>(key.size()),
                   key.data(), item->flags, item->data->size());
    }
    out->AppendPinned(*item->data, item->data);
    out->Append("\r\n");
  }
  out->Append("END\r\n");
  return result;
}

ServerCore::Outcome ServerCore::HandleStorage(const TextRequest& req,
                                              int64_t now,
                                              ResponseAssembler* out) {
  ++cmd_set_;
  if (obs_sets_ != nullptr) {
    obs_sets_->Increment();
  }
  const std::string_view key = req.keys[0];
  ItemStore::StoreResult result = ItemStore::StoreResult::kNotStored;
  switch (req.verb) {
    case Verb::kSet:
      result = store_.Set(key, req.flags, req.exptime, req.data, now);
      break;
    case Verb::kAdd:
      result = store_.Add(key, req.flags, req.exptime, req.data, now);
      break;
    case Verb::kReplace:
      result = store_.Replace(key, req.flags, req.exptime, req.data, now);
      break;
    default:
      break;
  }
  const bool stored = result == ItemStore::StoreResult::kStored;
  if (stored) {
    if (telemetry_ != nullptr && telemetry_->span_active() &&
        system_ != nullptr) {
      const int64_t t0 = RequestTelemetry::NowMicros();
      GatePut(key, req.data.size());
      telemetry_->AddRouteTime(RequestTelemetry::NowMicros() - t0);
    } else {
      GatePut(key, req.data.size());
    }
  }
  if (!req.noreply) {
    out->Append(stored ? "STORED\r\n" : "NOT_STORED\r\n");
  }
  return Outcome{stored ? RequestOutcome::kStored : RequestOutcome::kNotStored,
                 static_cast<uint32_t>(req.data.size())};
}

void ServerCore::AppendResilienceStats(ResponseAssembler* out) {
  const ResilienceLayer* layer =
      system_ != nullptr ? system_->resilience() : nullptr;
  if (layer != nullptr) {
    const auto counts = layer->CountBreakerStates(system_->now());
    out->Appendf("STAT spotcache_breakers_closed %d\r\n", counts.closed);
    out->Appendf("STAT spotcache_breakers_open %d\r\n", counts.open);
    out->Appendf("STAT spotcache_breakers_half_open %d\r\n", counts.half_open);
    out->Appendf("STAT spotcache_breaker_trips %" PRId64 "\r\n",
                 layer->breaker_trips());
  }
  if (obs_ != nullptr) {
    const auto rung = [this](const char* r) {
      return this->obs_->registry.CounterValue("resilience/served",
                                               {{"rung", r}});
    };
    out->Appendf("STAT spotcache_served_primary %" PRId64 "\r\n",
                 rung("primary"));
    out->Appendf("STAT spotcache_served_backup %" PRId64 "\r\n",
                 rung("backup"));
    out->Appendf("STAT spotcache_served_backend %" PRId64 "\r\n",
                 rung("backend"));
    out->Appendf("STAT spotcache_served_shed %" PRId64 "\r\n", rung("shed"));
  }
  const uint64_t keyed = cmd_get_ + cmd_set_;
  out->Appendf("STAT spotcache_shed_fraction %.6f\r\n",
               keyed == 0 ? 0.0
                          : static_cast<double>(sheds_) /
                                static_cast<double>(keyed));
}

void ServerCore::AppendSpotcacheStats(ResponseAssembler* out) {
  out->Appendf("STAT spotcache_version %s\r\n", config_.version.c_str());
  AppendResilienceStats(out);
  if (telemetry_ != nullptr) {
    const RequestTelemetryConfig& tc = telemetry_->config();
    out->Appendf("STAT spotcache_span_sample_every %u\r\n",
                 tc.span_sample_every);
    out->Appendf("STAT spotcache_latency_sample_every %u\r\n",
                 tc.latency_sample_every);
    out->Appendf("STAT spotcache_requests_seen %" PRIu64 "\r\n",
                 telemetry_->requests_seen());
    out->Appendf("STAT spotcache_spans_recorded %" PRIu64 "\r\n",
                 telemetry_->spans_recorded());
    out->Appendf("STAT spotcache_latencies_recorded %" PRIu64 "\r\n",
                 telemetry_->latencies_recorded());
    out->Appendf("STAT spotcache_slow_requests %" PRIu64 "\r\n",
                 telemetry_->slow_requests());
    out->Appendf("STAT spotcache_flight_ring_size %zu\r\n",
                 telemetry_->ring_size());
  }
  if (obs_ == nullptr) {
    return;
  }
  const MetricsRegistry& reg = obs_->registry;
  out->Appendf("STAT spotcache_loop_iterations %" PRId64 "\r\n",
               reg.CounterValue("net/loop/iterations"));
  out->Appendf("STAT spotcache_loop_stalls %" PRId64 "\r\n",
               reg.CounterValue("net/loop/stalls"));
  out->Appendf("STAT spotcache_pending_out_high_water_bytes %.0f\r\n",
               reg.GaugeValue("net/pending_out_high_water_bytes"));
  out->Appendf("STAT spotcache_conns_high_water %.0f\r\n",
               reg.GaugeValue("net/conns_high_water"));
  // Event-loop and per-(op, outcome) latency quantiles, microseconds. The
  // histogram names are canonical full names, so the (op, outcome) pair is
  // recoverable from the label block: net/request_latency_s{op=x,outcome=y}.
  for (const auto& [full, hist] : reg.histograms()) {
    std::string flat;
    if (full == "net/loop/wait_s") {
      flat = "loop_wait";
    } else if (full == "net/loop/work_s") {
      flat = "loop_work";
    } else if (full.rfind("net/request_latency_s{", 0) == 0) {
      flat = "latency";
      // Label block -> "_<value>" per label, emission order (op, outcome).
      const size_t open = full.find('{');
      size_t pos = open + 1;
      while (pos < full.size() && full[pos] != '}') {
        const size_t eq = full.find('=', pos);
        size_t end = full.find(',', pos);
        if (end == std::string::npos || end > full.find('}', pos)) {
          end = full.find('}', pos);
        }
        if (eq == std::string::npos || eq > end) {
          break;
        }
        flat += '_';
        flat += full.substr(eq + 1, end - eq - 1);
        pos = end + (full[end] == ',' ? 1 : 0);
        if (full[end] == '}') {
          break;
        }
      }
    } else {
      continue;
    }
    const std::vector<double> qs = hist.Quantiles({0.5, 0.99});
    out->Appendf("STAT spotcache_%s_count %" PRIu64 "\r\n", flat.c_str(),
                 hist.count());
    out->Appendf("STAT spotcache_%s_p50_us %.0f\r\n", flat.c_str(),
                 qs[0] * 1e6);
    out->Appendf("STAT spotcache_%s_p99_us %.0f\r\n", flat.c_str(),
                 qs[1] * 1e6);
  }
}

void ServerCore::AppendDefaultStats(int64_t now, ResponseAssembler* out) {
  const auto stat_u = [out](const char* name, uint64_t v) {
    out->Appendf("STAT %s %" PRIu64 "\r\n", name, v);
  };
  out->Appendf("STAT version %s\r\n", config_.version.c_str());
  stat_u("uptime",
         start_time_ >= 0 ? static_cast<uint64_t>(now - start_time_) : 0);
  stat_u("curr_items", store_.item_count());
  stat_u("bytes", store_.bytes_used());
  stat_u("limit_maxbytes", store_.capacity_bytes());
  stat_u("cmd_get", cmd_get_);
  stat_u("cmd_set", cmd_set_);
  stat_u("cmd_touch", cmd_touch_);
  stat_u("cmd_delete", cmd_delete_);
  stat_u("cmd_flush", cmd_flush_);
  stat_u("get_hits", get_hits_);
  stat_u("get_misses", get_misses_);
  stat_u("evictions", store_.evictions());
  stat_u("expired_unfetched", store_.expired_reaped());
  stat_u("sheds", sheds_);
  stat_u("protocol_errors", protocol_errors_);
  if (system_ != nullptr) {
    AppendResilienceStats(out);
  }
}

void ServerCore::HandleStats(const TextRequest& req, int64_t now,
                             ResponseAssembler* out) {
  if (req.stats_arg == "spotcache") {
    AppendSpotcacheStats(out);
  } else {
    AppendDefaultStats(now, out);
  }
  out->Append("END\r\n");
}

bool ServerCore::Handle(const TextRequest& req, int64_t now,
                        ResponseAssembler* out) {
  if (start_time_ < 0) {
    start_time_ = now;
  }
  if (obs_requests_ != nullptr) {
    obs_requests_->Increment();
  }
  if (telemetry_ != nullptr) {
    telemetry_->OnParsed(OpFor(req.verb),
                         static_cast<uint32_t>(req.keys.size()));
  }
  Outcome outcome;
  bool keep_open = true;
  switch (req.verb) {
    case Verb::kGet:
    case Verb::kGets:
      outcome = HandleRetrieve(req, now, out);
      break;

    case Verb::kSet:
    case Verb::kAdd:
    case Verb::kReplace:
      outcome = HandleStorage(req, now, out);
      break;

    case Verb::kDelete: {
      ++cmd_delete_;
      const bool deleted = store_.Delete(req.keys[0], now);
      if (!req.noreply) {
        out->Append(deleted ? "DELETED\r\n" : "NOT_FOUND\r\n");
      }
      outcome.outcome =
          deleted ? RequestOutcome::kHit : RequestOutcome::kMiss;
      break;
    }

    case Verb::kTouch: {
      ++cmd_touch_;
      const bool touched = store_.Touch(req.keys[0], req.exptime, now);
      if (!req.noreply) {
        out->Append(touched ? "TOUCHED\r\n" : "NOT_FOUND\r\n");
      }
      outcome.outcome =
          touched ? RequestOutcome::kHit : RequestOutcome::kMiss;
      break;
    }

    case Verb::kStats:
      HandleStats(req, now, out);
      break;

    case Verb::kVersion:
      out->Appendf("VERSION %s\r\n", config_.version.c_str());
      break;

    case Verb::kFlushAll:
      ++cmd_flush_;
      store_.FlushAll(now, req.delay_s);
      if (!req.noreply) {
        out->Append("OK\r\n");
      }
      break;

    case Verb::kQuit:
      keep_open = false;
      break;
  }
  if (telemetry_ != nullptr) {
    telemetry_->OnExecuted(outcome.outcome, outcome.value_bytes);
  }
  return keep_open;
}

void ServerCore::HandleParseError(ParseErrorKind kind, ResponseAssembler* out) {
  ++protocol_errors_;
  if (obs_protocol_errors_ != nullptr) {
    obs_protocol_errors_->Increment();
  }
  out->Append(ErrorReply(kind));
}

}  // namespace spotcache::net
