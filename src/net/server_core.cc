#include "src/net/server_core.h"

#include <inttypes.h>

#include "src/core/system.h"

namespace spotcache::net {

namespace {

TelemetryOp OpFor(Verb verb) {
  switch (verb) {
    case Verb::kGet:
    case Verb::kGets:
      return TelemetryOp::kGet;
    case Verb::kSet:
    case Verb::kAdd:
    case Verb::kReplace:
      return TelemetryOp::kSet;
    case Verb::kDelete:
      return TelemetryOp::kDelete;
    case Verb::kTouch:
      return TelemetryOp::kTouch;
    default:
      return TelemetryOp::kOther;
  }
}

}  // namespace

ServerCore::ServerCore(const ServerCoreConfig& config, SpotCacheSystem* system,
                       Obs* obs)
    : config_(config),
      store_(config.capacity_bytes),
      system_(system),
      obs_(obs) {
  if (obs != nullptr) {
    obs_requests_ = obs->registry.GetCounter("net/requests");
    obs_get_hits_ = obs->registry.GetCounter("net/get_hits");
    obs_get_misses_ = obs->registry.GetCounter("net/get_misses");
    obs_sets_ = obs->registry.GetCounter("net/sets");
    obs_sheds_ = obs->registry.GetCounter("net/sheds");
    obs_protocol_errors_ = obs->registry.GetCounter("net/protocol_errors");
  }
}

void ServerCore::ConfigureShard(const ShardContext& ctx) {
  shard_ = ctx;
  if (sharded()) {
    store_.set_shared_cas(shard_.exchange->shared_cas());
  }
}

ServedBy ServerCore::GateGet(std::string_view key) {
  if (system_ == nullptr) {
    return ServedBy::kCacheNode;
  }
  if (shard_.system_mu != nullptr) {
    std::lock_guard<std::mutex> lock(*shard_.system_mu);
    return system_->Get(HashString(key)).served_by;
  }
  const CacheResponse r = system_->Get(HashString(key));
  return r.served_by;
}

void ServerCore::GatePut(std::string_view key, size_t bytes) {
  if (system_ == nullptr) {
    return;
  }
  if (shard_.system_mu != nullptr) {
    std::lock_guard<std::mutex> lock(*shard_.system_mu);
    system_->Put(HashString(key), static_cast<uint32_t>(bytes));
    return;
  }
  system_->Put(HashString(key), static_cast<uint32_t>(bytes));
}

ServerCore::Outcome ServerCore::HandleRetrieve(const TextRequest& req,
                                               int64_t now,
                                               ResponseAssembler* out) {
  const bool with_cas = req.verb == Verb::kGets;
  const bool time_route =
      system_ != nullptr && telemetry_ != nullptr && telemetry_->span_active();
  Outcome result{RequestOutcome::kHit, 0};
  for (size_t ki = 0; ki < req.keys.size(); ++ki) {
    const std::string_view key = req.keys[ki];
    ++cmd_get_;
    ServedBy served;
    if (time_route) {
      const int64_t t0 = RequestTelemetry::NowMicros();
      served = GateGet(key);
      telemetry_->AddRouteTime(RequestTelemetry::NowMicros() - t0);
    } else {
      served = GateGet(key);
    }
    if (served == ServedBy::kDropped) {
      // The ladder shed this key: fail the whole retrieval loudly rather
      // than silently reporting a miss — clients must see backpressure.
      // (Sharded mode: any ops already scattered for the remaining keys are
      // awaited at batch end; their results are discarded.)
      ++sheds_;
      if (obs_sheds_ != nullptr) {
        obs_sheds_->Increment();
      }
      out->Append("SERVER_ERROR temporarily overloaded\r\n");
      result.outcome = RequestOutcome::kShed;
      return result;
    }
    if (served == ServedBy::kBackup) {
      result.outcome = RequestOutcome::kBackup;
    }
    if (CrossShardOp* rop = RemoteOp(ki); rop != nullptr) {
      // Remote-owned key: the fetch was scattered when the batch was parsed;
      // gather here so VALUE blocks come back in request order.
      AwaitOp(rop);
      if (!rop->found) {
        ++get_misses_;
        if (obs_get_misses_ != nullptr) {
          obs_get_misses_->Increment();
        }
        if (result.outcome == RequestOutcome::kHit) {
          result.outcome = RequestOutcome::kMiss;
        }
        continue;
      }
      ++get_hits_;
      if (obs_get_hits_ != nullptr) {
        obs_get_hits_->Increment();
      }
      result.value_bytes += static_cast<uint32_t>(rop->rdata->size());
      if (with_cas) {
        out->Appendf("VALUE %.*s %u %zu %" PRIu64 "\r\n",
                     static_cast<int>(key.size()), key.data(), rop->rflags,
                     rop->rdata->size(), rop->rcas);
      } else {
        out->Appendf("VALUE %.*s %u %zu\r\n", static_cast<int>(key.size()),
                     key.data(), rop->rflags, rop->rdata->size());
      }
      out->AppendPinned(*rop->rdata, rop->rdata);
      out->Append("\r\n");
      continue;
    }
    const Item* item = store_.Get(key, now);
    if (item == nullptr) {
      ++get_misses_;
      if (obs_get_misses_ != nullptr) {
        obs_get_misses_->Increment();
      }
      if (result.outcome == RequestOutcome::kHit) {
        result.outcome = RequestOutcome::kMiss;
      }
      continue;
    }
    ++get_hits_;
    if (obs_get_hits_ != nullptr) {
      obs_get_hits_->Increment();
    }
    result.value_bytes += static_cast<uint32_t>(item->data->size());
    if (with_cas) {
      out->Appendf("VALUE %.*s %u %zu %" PRIu64 "\r\n",
                   static_cast<int>(key.size()), key.data(), item->flags,
                   item->data->size(), item->cas);
    } else {
      out->Appendf("VALUE %.*s %u %zu\r\n", static_cast<int>(key.size()),
                   key.data(), item->flags, item->data->size());
    }
    out->AppendPinned(*item->data, item->data);
    out->Append("\r\n");
  }
  out->Append("END\r\n");
  return result;
}

ServerCore::Outcome ServerCore::HandleStorage(const TextRequest& req,
                                              int64_t now,
                                              ResponseAssembler* out) {
  ++cmd_set_;
  if (obs_sets_ != nullptr) {
    obs_sets_->Increment();
  }
  const std::string_view key = req.keys[0];
  bool stored = false;
  if (CrossShardOp* rop = RemoteOp(0); rop != nullptr) {
    AwaitOp(rop);
    stored = rop->stored;
  } else {
    ItemStore::StoreResult result = ItemStore::StoreResult::kNotStored;
    switch (req.verb) {
      case Verb::kSet:
        result = store_.Set(key, req.flags, req.exptime, req.data, now);
        break;
      case Verb::kAdd:
        result = store_.Add(key, req.flags, req.exptime, req.data, now);
        break;
      case Verb::kReplace:
        result = store_.Replace(key, req.flags, req.exptime, req.data, now);
        break;
      default:
        break;
    }
    stored = result == ItemStore::StoreResult::kStored;
  }
  if (stored) {
    if (telemetry_ != nullptr && telemetry_->span_active() &&
        system_ != nullptr) {
      const int64_t t0 = RequestTelemetry::NowMicros();
      GatePut(key, req.data.size());
      telemetry_->AddRouteTime(RequestTelemetry::NowMicros() - t0);
    } else {
      GatePut(key, req.data.size());
    }
  }
  if (!req.noreply) {
    out->Append(stored ? "STORED\r\n" : "NOT_STORED\r\n");
  }
  return Outcome{stored ? RequestOutcome::kStored : RequestOutcome::kNotStored,
                 static_cast<uint32_t>(req.data.size())};
}

void ServerCore::AppendResilienceStats(ResponseAssembler* out) {
  // Sharded mode: the system (and its obs bundle, where resilience counters
  // live) is shared across shards — serialize the reads.
  std::unique_lock<std::mutex> sys_lock;
  if (shard_.system_mu != nullptr) {
    sys_lock = std::unique_lock<std::mutex>(*shard_.system_mu);
  }
  const ResilienceLayer* layer =
      system_ != nullptr ? system_->resilience() : nullptr;
  if (layer != nullptr) {
    const auto counts = layer->CountBreakerStates(system_->now());
    out->Appendf("STAT spotcache_breakers_closed %d\r\n", counts.closed);
    out->Appendf("STAT spotcache_breakers_open %d\r\n", counts.open);
    out->Appendf("STAT spotcache_breakers_half_open %d\r\n", counts.half_open);
    out->Appendf("STAT spotcache_breaker_trips %" PRId64 "\r\n",
                 layer->breaker_trips());
  }
  const Obs* robs = shard_.system_obs != nullptr ? shard_.system_obs : obs_;
  if (robs != nullptr) {
    const auto rung = [robs](const char* r) {
      return robs->registry.CounterValue("resilience/served", {{"rung", r}});
    };
    out->Appendf("STAT spotcache_served_primary %" PRId64 "\r\n",
                 rung("primary"));
    out->Appendf("STAT spotcache_served_backup %" PRId64 "\r\n",
                 rung("backup"));
    out->Appendf("STAT spotcache_served_backend %" PRId64 "\r\n",
                 rung("backend"));
    out->Appendf("STAT spotcache_served_shed %" PRId64 "\r\n", rung("shed"));
  }
  const uint64_t keyed = cmd_get_ + cmd_set_;
  out->Appendf("STAT spotcache_shed_fraction %.6f\r\n",
               keyed == 0 ? 0.0
                          : static_cast<double>(sheds_) /
                                static_cast<double>(keyed));
}

void ServerCore::AppendSpotcacheStats(ResponseAssembler* out) {
  out->Appendf("STAT spotcache_version %s\r\n", config_.version.c_str());
  if (sharded()) {
    // Which reactor owns this connection (loadgen uses this to report its
    // per-connection shard distribution), plus the shard fan-out. Telemetry
    // lines below stay per-shard: they describe this reactor's loop.
    out->Appendf("STAT spotcache_shard %u\r\n", shard_.self);
    out->Appendf("STAT spotcache_shard_count %u\r\n", shard_.count);
  }
  AppendResilienceStats(out);
  if (telemetry_ != nullptr) {
    const RequestTelemetryConfig& tc = telemetry_->config();
    out->Appendf("STAT spotcache_span_sample_every %u\r\n",
                 tc.span_sample_every);
    out->Appendf("STAT spotcache_latency_sample_every %u\r\n",
                 tc.latency_sample_every);
    out->Appendf("STAT spotcache_requests_seen %" PRIu64 "\r\n",
                 telemetry_->requests_seen());
    out->Appendf("STAT spotcache_spans_recorded %" PRIu64 "\r\n",
                 telemetry_->spans_recorded());
    out->Appendf("STAT spotcache_latencies_recorded %" PRIu64 "\r\n",
                 telemetry_->latencies_recorded());
    out->Appendf("STAT spotcache_slow_requests %" PRIu64 "\r\n",
                 telemetry_->slow_requests());
    out->Appendf("STAT spotcache_flight_ring_size %zu\r\n",
                 telemetry_->ring_size());
  }
  if (obs_ == nullptr) {
    return;
  }
  const MetricsRegistry& reg = obs_->registry;
  out->Appendf("STAT spotcache_loop_iterations %" PRId64 "\r\n",
               reg.CounterValue("net/loop/iterations"));
  out->Appendf("STAT spotcache_loop_stalls %" PRId64 "\r\n",
               reg.CounterValue("net/loop/stalls"));
  out->Appendf("STAT spotcache_pending_out_high_water_bytes %.0f\r\n",
               reg.GaugeValue("net/pending_out_high_water_bytes"));
  out->Appendf("STAT spotcache_conns_high_water %.0f\r\n",
               reg.GaugeValue("net/conns_high_water"));
  // Event-loop and per-(op, outcome) latency quantiles, microseconds. The
  // histogram names are canonical full names, so the (op, outcome) pair is
  // recoverable from the label block: net/request_latency_s{op=x,outcome=y}.
  for (const auto& [full, hist] : reg.histograms()) {
    std::string flat;
    if (full == "net/loop/wait_s") {
      flat = "loop_wait";
    } else if (full == "net/loop/work_s") {
      flat = "loop_work";
    } else if (full.rfind("net/request_latency_s{", 0) == 0) {
      flat = "latency";
      // Label block -> "_<value>" per label, emission order (op, outcome).
      const size_t open = full.find('{');
      size_t pos = open + 1;
      while (pos < full.size() && full[pos] != '}') {
        const size_t eq = full.find('=', pos);
        size_t end = full.find(',', pos);
        if (end == std::string::npos || end > full.find('}', pos)) {
          end = full.find('}', pos);
        }
        if (eq == std::string::npos || eq > end) {
          break;
        }
        flat += '_';
        flat += full.substr(eq + 1, end - eq - 1);
        pos = end + (full[end] == ',' ? 1 : 0);
        if (full[end] == '}') {
          break;
        }
      }
    } else {
      continue;
    }
    const std::vector<double> qs = hist.Quantiles({0.5, 0.99});
    out->Appendf("STAT spotcache_%s_count %" PRIu64 "\r\n", flat.c_str(),
                 hist.count());
    out->Appendf("STAT spotcache_%s_p50_us %.0f\r\n", flat.c_str(),
                 qs[0] * 1e6);
    out->Appendf("STAT spotcache_%s_p99_us %.0f\r\n", flat.c_str(),
                 qs[1] * 1e6);
  }
}

void ServerCore::AppendDefaultStats(int64_t now, ResponseAssembler* out) {
  // Sharded mode aggregates every shard's snapshot (stats is an ordering
  // barrier, so no scattered-ahead op of this batch can race the gather);
  // single-shard mode reads the same fields directly.
  CoreSnapshot t = Snapshot();
  if (sharded()) {
    GatherPeerSnapshots(&t);
  }
  const auto stat_u = [out](const char* name, uint64_t v) {
    out->Appendf("STAT %s %" PRIu64 "\r\n", name, v);
  };
  out->Appendf("STAT version %s\r\n", config_.version.c_str());
  stat_u("uptime",
         t.start_time >= 0 ? static_cast<uint64_t>(now - t.start_time) : 0);
  stat_u("curr_items", t.curr_items);
  stat_u("bytes", t.bytes_used);
  stat_u("limit_maxbytes", t.capacity_bytes);
  stat_u("cmd_get", t.cmd_get);
  stat_u("cmd_set", t.cmd_set);
  stat_u("cmd_touch", t.cmd_touch);
  stat_u("cmd_delete", t.cmd_delete);
  stat_u("cmd_flush", t.cmd_flush);
  stat_u("get_hits", t.get_hits);
  stat_u("get_misses", t.get_misses);
  stat_u("evictions", t.evictions);
  stat_u("expired_unfetched", t.expired_reaped);
  stat_u("sheds", t.sheds);
  stat_u("protocol_errors", t.protocol_errors);
  if (system_ != nullptr) {
    AppendResilienceStats(out);
  }
}

void ServerCore::HandleStats(const TextRequest& req, int64_t now,
                             ResponseAssembler* out) {
  if (req.stats_arg == "spotcache") {
    AppendSpotcacheStats(out);
  } else {
    AppendDefaultStats(now, out);
  }
  out->Append("END\r\n");
}

bool ServerCore::Handle(const TextRequest& req, int64_t now,
                        ResponseAssembler* out) {
  if (start_time_ < 0) {
    start_time_ = now;
  }
  if (obs_requests_ != nullptr) {
    obs_requests_->Increment();
  }
  if (telemetry_ != nullptr) {
    telemetry_->OnParsed(OpFor(req.verb),
                         static_cast<uint32_t>(req.keys.size()));
  }
  Outcome outcome;
  bool keep_open = true;
  switch (req.verb) {
    case Verb::kGet:
    case Verb::kGets:
      outcome = HandleRetrieve(req, now, out);
      break;

    case Verb::kSet:
    case Verb::kAdd:
    case Verb::kReplace:
      outcome = HandleStorage(req, now, out);
      break;

    case Verb::kDelete: {
      ++cmd_delete_;
      bool deleted;
      if (CrossShardOp* rop = RemoteOp(0); rop != nullptr) {
        AwaitOp(rop);
        deleted = rop->found;
      } else {
        deleted = store_.Delete(req.keys[0], now);
      }
      if (!req.noreply) {
        out->Append(deleted ? "DELETED\r\n" : "NOT_FOUND\r\n");
      }
      outcome.outcome =
          deleted ? RequestOutcome::kHit : RequestOutcome::kMiss;
      break;
    }

    case Verb::kTouch: {
      ++cmd_touch_;
      bool touched;
      if (CrossShardOp* rop = RemoteOp(0); rop != nullptr) {
        AwaitOp(rop);
        touched = rop->found;
      } else {
        touched = store_.Touch(req.keys[0], req.exptime, now);
      }
      if (!req.noreply) {
        out->Append(touched ? "TOUCHED\r\n" : "NOT_FOUND\r\n");
      }
      outcome.outcome =
          touched ? RequestOutcome::kHit : RequestOutcome::kMiss;
      break;
    }

    case Verb::kStats:
      HandleStats(req, now, out);
      break;

    case Verb::kVersion:
      out->Appendf("VERSION %s\r\n", config_.version.c_str());
      break;

    case Verb::kFlushAll:
      ++cmd_flush_;
      store_.FlushAll(now, req.delay_s);
      if (sharded()) {
        // Ordering barrier: every scattered op before this point has been
        // awaited (scatter windows stop at flush_all), and nothing after it
        // is scattered until the broadcast round-trips, so "stores before
        // the flush die, stores after survive" holds across shards.
        BroadcastFlush(now, req.delay_s);
      }
      if (!req.noreply) {
        out->Append("OK\r\n");
      }
      break;

    case Verb::kQuit:
      keep_open = false;
      break;
  }
  if (telemetry_ != nullptr) {
    telemetry_->OnExecuted(outcome.outcome, outcome.value_bytes);
  }
  return keep_open;
}

void ServerCore::HandleParseError(ParseErrorKind kind, ResponseAssembler* out) {
  ++protocol_errors_;
  if (obs_protocol_errors_ != nullptr) {
    obs_protocol_errors_->Increment();
  }
  out->Append(ErrorReply(kind));
}

// --- Sharded-batch execution. ---------------------------------------------

CoreSnapshot ServerCore::Snapshot() const {
  CoreSnapshot s;
  s.curr_items = store_.item_count();
  s.bytes_used = store_.bytes_used();
  s.capacity_bytes = store_.capacity_bytes();
  s.evictions = store_.evictions();
  s.expired_reaped = store_.expired_reaped();
  s.cmd_get = cmd_get_;
  s.cmd_set = cmd_set_;
  s.cmd_touch = cmd_touch_;
  s.cmd_delete = cmd_delete_;
  s.cmd_flush = cmd_flush_;
  s.get_hits = get_hits_;
  s.get_misses = get_misses_;
  s.sheds = sheds_;
  s.protocol_errors = protocol_errors_;
  s.start_time = start_time_;
  return s;
}

void ServerCore::ExecuteCrossOp(CrossShardOp* op) {
  using Kind = CrossShardOp::Kind;
  switch (op->kind) {
    case Kind::kGet: {
      const Item* item = store_.Get(op->key, op->now);
      if (item != nullptr) {
        op->found = true;
        op->rflags = item->flags;
        op->rcas = item->cas;
        op->rdata = item->data;
      } else {
        op->found = false;
      }
      break;
    }
    case Kind::kSet:
      op->stored = store_.Set(op->key, op->flags, op->exptime, op->data,
                              op->now) == ItemStore::StoreResult::kStored;
      break;
    case Kind::kAdd:
      op->stored = store_.Add(op->key, op->flags, op->exptime, op->data,
                              op->now) == ItemStore::StoreResult::kStored;
      break;
    case Kind::kReplace:
      op->stored = store_.Replace(op->key, op->flags, op->exptime, op->data,
                                  op->now) == ItemStore::StoreResult::kStored;
      break;
    case Kind::kDelete:
      op->found = store_.Delete(op->key, op->now);
      break;
    case Kind::kTouch:
      op->found = store_.Touch(op->key, op->exptime, op->now);
      break;
    case Kind::kFlushAll:
      store_.FlushAll(op->now, op->delay_s);
      break;
    case Kind::kSnapshot:
      op->snapshot = Snapshot();
      break;
    case Kind::kAdoptConn:
      break;  // connection handoff is the server's job, not the core's
  }
  op->done.store(true, std::memory_order_release);
}

void ServerCore::ServiceInbox() {
  if (sharded()) {
    shard_.exchange->ServiceInbox(shard_.self);
  }
}

void ServerCore::ScatterEvent(const PendingEvent& ev, size_t index,
                              uint64_t* wake_mask) {
  std::vector<CrossShardOp*>& ops = event_ops_[index];
  // Every op is fully populated BEFORE Submit: the ring's release/acquire
  // on the tail index is what publishes the fields to the owner thread.
  const auto make_op = [this](CrossShardOp::Kind kind,
                              const std::string& key) -> CrossShardOp* {
    CrossShardOp& op = batch_ops_.emplace_back();
    op.kind = kind;
    op.key = key;
    op.now = batch_now_;
    return &op;
  };
  const auto submit = [this, wake_mask](CrossShardOp* op, uint32_t owner) {
    shard_.exchange->Submit(shard_.self, owner, op);
    *wake_mask |= uint64_t{1} << owner;
  };
  switch (ev.verb) {
    case Verb::kGet:
    case Verb::kGets:
      ops.assign(ev.keys.size(), nullptr);
      for (size_t ki = 0; ki < ev.keys.size(); ++ki) {
        const uint32_t owner = ShardOfKey(ev.keys[ki], shard_.count);
        if (owner != shard_.self) {
          CrossShardOp* op = make_op(CrossShardOp::Kind::kGet, ev.keys[ki]);
          ops[ki] = op;
          submit(op, owner);
        }
      }
      break;
    case Verb::kSet:
    case Verb::kAdd:
    case Verb::kReplace: {
      ops.assign(1, nullptr);
      const uint32_t owner = ShardOfKey(ev.keys[0], shard_.count);
      if (owner != shard_.self) {
        const CrossShardOp::Kind kind =
            ev.verb == Verb::kSet     ? CrossShardOp::Kind::kSet
            : ev.verb == Verb::kAdd   ? CrossShardOp::Kind::kAdd
                                      : CrossShardOp::Kind::kReplace;
        CrossShardOp* op = make_op(kind, ev.keys[0]);
        op->flags = ev.flags;
        op->exptime = ev.exptime;
        op->data = ev.data;
        ops[0] = op;
        submit(op, owner);
      }
      break;
    }
    case Verb::kDelete:
    case Verb::kTouch: {
      ops.assign(1, nullptr);
      const uint32_t owner = ShardOfKey(ev.keys[0], shard_.count);
      if (owner != shard_.self) {
        CrossShardOp* op =
            make_op(ev.verb == Verb::kDelete ? CrossShardOp::Kind::kDelete
                                             : CrossShardOp::Kind::kTouch,
                    ev.keys[0]);
        op->exptime = ev.exptime;
        ops[0] = op;
        submit(op, owner);
      }
      break;
    }
    default:
      ops.clear();
      break;
  }
}

size_t ServerCore::ScatterWindow(const std::vector<PendingEvent>& events,
                                 size_t from) {
  const auto is_barrier = [](const PendingEvent& ev) {
    return !ev.is_error &&
           (ev.verb == Verb::kStats || ev.verb == Verb::kFlushAll ||
            ev.verb == Verb::kQuit);
  };
  if (from < events.size() && is_barrier(events[from])) {
    // A barrier at the window start executes before anything past it may
    // scatter: resume scatter at the next event.
    return from + 1;
  }
  uint64_t wake_mask = 0;
  size_t i = from;
  for (; i < events.size() && !is_barrier(events[i]); ++i) {
    ScatterEvent(events[i], i, &wake_mask);
  }
  // One wake per touched shard per window, after all pushes (no lost
  // wakeups: the op is visible in the ring before the eventfd write).
  for (uint32_t s = 0; wake_mask != 0 && s < shard_.count; ++s) {
    if ((wake_mask >> s) & 1) {
      shard_.exchange->Wake(s);
    }
  }
  return i;
}

bool ServerCore::ExecuteBatch(const std::vector<PendingEvent>& events,
                              int64_t now, ResponseAssembler* out) {
  batch_now_ = now;
  event_ops_.resize(events.size());
  for (auto& ops : event_ops_) {
    ops.clear();
  }
  bool keep_open = true;
  size_t scatter_from = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (i >= scatter_from) {
      scatter_from = ScatterWindow(events, i);
    }
    if ((i & 63) == 0) {
      ServiceInbox();  // bound cross-shard latency inside big batches
    }
    const PendingEvent& ev = events[i];
    if (telemetry_ != nullptr) {
      telemetry_->BeginRequest();
    }
    if (ev.is_error) {
      if (telemetry_ != nullptr) {
        telemetry_->OnParsed(TelemetryOp::kOther, 0);
      }
      HandleParseError(ev.error, out);
      if (telemetry_ != nullptr) {
        telemetry_->OnExecuted(RequestOutcome::kError, 0);
      }
      continue;
    }
    key_views_.assign(ev.keys.begin(), ev.keys.end());
    TextRequest req;
    req.verb = ev.verb;
    req.keys = std::span<const std::string_view>(key_views_);
    req.flags = ev.flags;
    req.exptime = ev.exptime;
    req.delay_s = ev.delay_s;
    req.stats_arg = ev.stats_arg;
    req.data = ev.data;
    req.noreply = ev.noreply;
    current_event_ops_ = &event_ops_[i];
    keep_open = Handle(req, now, out);
    current_event_ops_ = nullptr;
    if (!keep_open) {
      break;
    }
  }
  // Await every scattered op before reusing the deque: ops past a `quit`
  // (or simply unconsumed) must not dangle into the next batch.
  for (CrossShardOp& op : batch_ops_) {
    AwaitOp(&op);
  }
  batch_ops_.clear();
  event_ops_.clear();
  return keep_open;
}

void ServerCore::GatherPeerSnapshots(CoreSnapshot* total) {
  std::deque<CrossShardOp> ops;
  for (uint32_t s = 0; s < shard_.count; ++s) {
    if (s == shard_.self) {
      continue;
    }
    CrossShardOp& op = ops.emplace_back();
    op.kind = CrossShardOp::Kind::kSnapshot;
    op.now = batch_now_;
    shard_.exchange->Submit(shard_.self, s, &op);
    shard_.exchange->Wake(s);
  }
  for (CrossShardOp& op : ops) {
    AwaitOp(&op);
    const CoreSnapshot& s = op.snapshot;
    total->curr_items += s.curr_items;
    total->bytes_used += s.bytes_used;
    total->capacity_bytes += s.capacity_bytes;
    total->evictions += s.evictions;
    total->expired_reaped += s.expired_reaped;
    total->cmd_get += s.cmd_get;
    total->cmd_set += s.cmd_set;
    total->cmd_touch += s.cmd_touch;
    total->cmd_delete += s.cmd_delete;
    total->cmd_flush += s.cmd_flush;
    total->get_hits += s.get_hits;
    total->get_misses += s.get_misses;
    total->sheds += s.sheds;
    total->protocol_errors += s.protocol_errors;
    if (s.start_time >= 0 &&
        (total->start_time < 0 || s.start_time < total->start_time)) {
      total->start_time = s.start_time;
    }
  }
}

void ServerCore::BroadcastFlush(int64_t now, int64_t delay_s) {
  std::deque<CrossShardOp> ops;
  for (uint32_t s = 0; s < shard_.count; ++s) {
    if (s == shard_.self) {
      continue;
    }
    CrossShardOp& op = ops.emplace_back();
    op.kind = CrossShardOp::Kind::kFlushAll;
    op.now = now;
    op.delay_s = delay_s;
    shard_.exchange->Submit(shard_.self, s, &op);
    shard_.exchange->Wake(s);
  }
  for (CrossShardOp& op : ops) {
    AwaitOp(&op);
  }
}


}  // namespace spotcache::net
