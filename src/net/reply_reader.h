// ReplyReader: incremental classifier for memcached text responses on a
// pipelined connection.
//
// The open-loop load generator keeps many requests in flight per connection
// and only needs each reply's *disposition* (hit / miss / error), not its
// payload. ReplyReader consumes raw received bytes incrementally (any chunking)
// and emits one completion per reply, in request order. The caller tells the
// reader what kind of reply to expect for every request it sends (Push), and
// matches completions against its own FIFO of send timestamps.
//
// Retrieval replies span VALUE blocks until END; value payloads are skipped
// by byte count without copying. ERROR / CLIENT_ERROR / SERVER_ERROR lines
// terminate the current expectation with kError — this is how the PR-4
// degradation ladder's sheds (SERVER_ERROR temporarily overloaded) show up
// in loadgen results.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

namespace spotcache::net {

class ReplyReader {
 public:
  /// What the next un-answered request expects back.
  enum class Expect : uint8_t {
    kRetrieval,  // get/gets: VALUE blocks then END
    kLine,       // set/delete/touch/...: exactly one status line
  };

  enum class Status : uint8_t {
    kHit,    // retrieval with >= 1 VALUE, or a positive status line
    kMiss,   // retrieval END with no VALUE, or NOT_STORED/NOT_FOUND/EXISTS
    kError,  // ERROR / CLIENT_ERROR / SERVER_ERROR
  };

  using Sink = std::function<void(Status)>;

  /// Registers the reply expectation for a request just sent (FIFO order).
  void Push(Expect e) { pending_.push_back(e); }
  size_t pending() const { return pending_.size(); }

  /// Consumes `bytes`, invoking `sink` once per completed reply in order.
  /// Returns false on protocol corruption: an unparseable reply line or
  /// response bytes arriving with no pending expectation. After a false
  /// return the stream is unrecoverable and the connection should be closed.
  bool Feed(std::string_view bytes, const Sink& sink);

 private:
  bool ConsumeLine(std::string_view line, const Sink& sink);

  std::deque<Expect> pending_;
  std::string partial_;     // buffered incomplete line
  size_t skip_bytes_ = 0;   // remaining VALUE payload (+ CRLF) to discard
  bool saw_value_ = false;  // current retrieval produced at least one VALUE
};

}  // namespace spotcache::net
