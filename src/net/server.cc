#include "src/net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <ctime>

#include "src/util/logging.h"

namespace spotcache::net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

NetServer::NetServer(const NetServerConfig& config, SpotCacheSystem* system,
                     Obs* obs)
    : config_(config),
      core_(config.core, system, obs),
      obs_(obs),
      clock_([] { return static_cast<int64_t>(::time(nullptr)); }) {
  if (obs_ != nullptr) {
    conns_opened_ = obs_->registry.GetCounter("net/conns_opened");
    conns_closed_ = obs_->registry.GetCounter("net/conns_closed");
    conns_rejected_ = obs_->registry.GetCounter("net/conns_rejected");
    bytes_in_ = obs_->registry.GetCounter("net/bytes_in");
    bytes_out_ = obs_->registry.GetCounter("net/bytes_out");
    slow_closes_ = obs_->registry.GetCounter("net/slow_consumer_closes");
  }
}

NetServer::~NetServer() {
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    (void)conn;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
  }
}

void NetServer::SetClock(std::function<int64_t()> now_unix) {
  clock_ = std::move(now_unix);
}

int64_t NetServer::NowUnix() const { return clock_(); }

int64_t NetServer::LoopMicros() const {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count() -
         t0_us_;
}

void NetServer::Trace(
    const char* type,
    std::vector<std::pair<std::string, std::string>> fields) {
  if (obs_ == nullptr || !obs_->tracer.enabled()) {
    return;
  }
  obs_->tracer.Custom(SimTime::FromMicros(LoopMicros()), type,
                      std::move(fields));
}

bool NetServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_host.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return false;
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return false;
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return false;
  }
  return true;
}

bool NetServer::Run() {
  running_ = true;
  t0_us_ = 0;
  t0_us_ = LoopMicros();
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SPOTCACHE_LOG(kError) << "epoll_wait failed: " << strerror(errno);
      return false;
    }
    for (int i = 0; i < n && running_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t tick = 0;
        (void)!::read(wake_fd_, &tick, sizeof(tick));
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch
      }
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn, "hangup");
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ConnReadable(conn);
        // The connection may be gone now; re-check before write handling.
        if (conns_.find(fd) == conns_.end()) {
          continue;
        }
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        ConnWritable(conn);
      }
    }
  }
  return true;
}

void NetServer::Stop() {
  running_ = false;
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or transient accept error: wait for the next event
    }
    if (conns_.size() >= config_.max_connections) {
      if (conns_rejected_ != nullptr) {
        conns_rejected_->Increment();
      }
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    if (conns_opened_ != nullptr) {
      conns_opened_->Increment();
    }
    Trace("conn_open", {{"conn", EventTracer::JsonNumber(
                                     static_cast<int64_t>(conn->id))}});
    conns_.emplace(fd, std::move(conn));
  }
}

void NetServer::ConnReadable(Connection* conn) {
  for (;;) {
    char* dst = conn->parser.WritePtr(config_.recv_chunk);
    const ssize_t n = ::recv(conn->fd, dst, config_.recv_chunk, 0);
    if (n > 0) {
      conn->parser.Commit(static_cast<size_t>(n));
      if (bytes_in_ != nullptr) {
        bytes_in_->Increment(n);
      }
      if (static_cast<size_t>(n) < config_.recv_chunk) {
        break;  // drained the socket
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn, "eof");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConn(conn, "read_error");
    return;
  }
  Drain(conn);
}

void NetServer::Drain(Connection* conn) {
  const int64_t now = NowUnix();
  for (;;) {
    const ParseStatus st = conn->parser.Next();
    if (st == ParseStatus::kNeedMore) {
      break;
    }
    if (st == ParseStatus::kError) {
      core_.HandleParseError(conn->parser.error(), &conn->assembler);
      Trace("protocol_error",
            {{"conn",
              EventTracer::JsonNumber(static_cast<int64_t>(conn->id))},
             {"kind",
              EventTracer::JsonString(ToString(conn->parser.error()))}});
      continue;
    }
    if (!core_.Handle(conn->parser.request(), now, &conn->assembler)) {
      conn->close_after_flush = true;
      break;
    }
  }
  Flush(conn);
}

void NetServer::Flush(Connection* conn) {
  // Drain any previously buffered bytes first to preserve ordering.
  while (conn->pending_sent < conn->pending_out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->pending_out.data() + conn->pending_sent,
               conn->pending_out.size() - conn->pending_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->pending_sent += static_cast<size_t>(n);
      if (bytes_out_ != nullptr) {
        bytes_out_->Increment(n);
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConn(conn, "write_error");
    return;
  }
  if (conn->pending_sent == conn->pending_out.size()) {
    conn->pending_out.clear();
    conn->pending_sent = 0;
  }

  const auto& iov = conn->assembler.iovecs();
  size_t iov_index = 0;
  size_t iov_offset = 0;
  if (conn->pending_out.empty()) {
    while (iov_index < iov.size()) {
      // writev caps at IOV_MAX vectors per call; loop in windows.
      iovec local[64];
      int cnt = 0;
      for (size_t i = iov_index; i < iov.size() && cnt < 64; ++i, ++cnt) {
        local[cnt] = iov[i];
        if (cnt == 0 && iov_offset > 0) {
          local[0].iov_base = static_cast<char*>(local[0].iov_base) + iov_offset;
          local[0].iov_len -= iov_offset;
        }
      }
      const ssize_t n = ::writev(conn->fd, local, cnt);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        CloseConn(conn, "write_error");
        return;
      }
      if (bytes_out_ != nullptr) {
        bytes_out_->Increment(n);
      }
      size_t left = static_cast<size_t>(n);
      while (left > 0 && iov_index < iov.size()) {
        const size_t avail = iov[iov_index].iov_len - iov_offset;
        if (left >= avail) {
          left -= avail;
          ++iov_index;
          iov_offset = 0;
        } else {
          iov_offset += left;
          left = 0;
        }
      }
    }
  }
  // Anything unsent gets copied out of the assembler (whose pins die on
  // Clear) into the pending buffer.
  for (size_t i = iov_index; i < iov.size(); ++i) {
    const char* base = static_cast<const char*>(iov[i].iov_base);
    size_t len = iov[i].iov_len;
    if (i == iov_index && iov_offset > 0) {
      base += iov_offset;
      len -= iov_offset;
    }
    conn->pending_out.append(base, len);
  }
  conn->assembler.Clear();

  if (conn->pending_out.size() - conn->pending_sent >
      config_.max_output_buffer) {
    if (slow_closes_ != nullptr) {
      slow_closes_->Increment();
    }
    CloseConn(conn, "slow_consumer");
    return;
  }
  if (conn->pending_out.empty() && conn->close_after_flush) {
    CloseConn(conn, "quit");
    return;
  }
  const bool want_write = !conn->pending_out.empty();
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    UpdateEpoll(conn);
  }
}

void NetServer::ConnWritable(Connection* conn) { Flush(conn); }

void NetServer::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::CloseConn(Connection* conn, const char* reason) {
  Trace("conn_close",
        {{"conn", EventTracer::JsonNumber(static_cast<int64_t>(conn->id))},
         {"reason", EventTracer::JsonString(reason)}});
  if (conns_closed_ != nullptr) {
    conns_closed_->Increment();
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
}

}  // namespace spotcache::net
