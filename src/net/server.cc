#include "src/net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <chrono>
#include <ctime>
#include <fstream>
#include <thread>

#include "src/obs/exporters.h"
#include "src/util/logging.h"

namespace spotcache::net {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Concurrent scrape connections tolerated beyond max_connections: scrapes
/// must succeed while the cache listener is saturated, but stay bounded.
constexpr size_t kMaxMetricsConns = 32;

}  // namespace

NetServer::NetServer(const NetServerConfig& config, SpotCacheSystem* system,
                     Obs* obs)
    : config_(config),
      core_(config.core, system, obs),
      handler_(&core_),
      obs_(obs),
      clock_([] { return static_cast<int64_t>(::time(nullptr)); }) {
  const RequestTelemetryConfig& tc = config_.telemetry;
  if (tc.span_sample_every != 0 || tc.latency_sample_every != 0) {
    telemetry_ = std::make_unique<RequestTelemetry>(tc, obs);
    core_.set_telemetry(telemetry_.get());
  }
  if (obs_ != nullptr) {
    conns_opened_ = obs_->registry.GetCounter("net/conns_opened");
    conns_closed_ = obs_->registry.GetCounter("net/conns_closed");
    conns_rejected_ = obs_->registry.GetCounter("net/conns_rejected");
    bytes_in_ = obs_->registry.GetCounter("net/bytes_in");
    bytes_out_ = obs_->registry.GetCounter("net/bytes_out");
    slow_closes_ = obs_->registry.GetCounter("net/slow_consumer_closes");
    loop_iterations_ = obs_->registry.GetCounter("net/loop/iterations");
    loop_stalls_ = obs_->registry.GetCounter("net/loop/stalls");
    metrics_scrapes_ = obs_->registry.GetCounter("net/metrics_scrapes");
    loop_wait_hist_ = obs_->registry.GetHistogram("net/loop/wait_s");
    loop_work_hist_ = obs_->registry.GetHistogram("net/loop/work_s");
    pending_hw_gauge_ =
        obs_->registry.GetGauge("net/pending_out_high_water_bytes");
    conns_hw_gauge_ = obs_->registry.GetGauge("net/conns_high_water");
  }
}

NetServer::~NetServer() {
  for (auto& [fd, conn] : conns_) {
    ::close(fd);
    (void)conn;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  if (metrics_listen_fd_ >= 0) {
    ::close(metrics_listen_fd_);
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
  }
}

void NetServer::SetClock(std::function<int64_t()> now_unix) {
  clock_ = std::move(now_unix);
}

int64_t NetServer::NowUnix() const { return clock_(); }

int64_t NetServer::LoopMicros() const {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count() -
         t0_us_;
}

void NetServer::Trace(
    const char* type,
    std::vector<std::pair<std::string, std::string>> fields) {
  if (obs_ == nullptr || !obs_->tracer.enabled()) {
    return;
  }
  obs_->tracer.Custom(SimTime::FromMicros(LoopMicros()), type,
                      std::move(fields));
}

int NetServer::OpenListener(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
  if (config_.reuse_port) {
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
#endif

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, config_.bind_host.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, config_.listen_backlog) != 0 || !SetNonBlocking(fd)) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

bool NetServer::Start() {
  if (!config_.skip_cache_listener) {
    listen_fd_ = OpenListener(config_.port, &port_);
    if (listen_fd_ < 0) {
      return false;
    }
  }
  if (config_.metrics_port >= 0) {
    metrics_listen_fd_ =
        OpenListener(static_cast<uint16_t>(config_.metrics_port),
                     &metrics_port_);
    if (metrics_listen_fd_ < 0) {
      return false;
    }
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (listen_fd_ >= 0) {
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
      return false;
    }
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return false;
  }
  if (metrics_listen_fd_ >= 0) {
    ev.data.fd = metrics_listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, metrics_listen_fd_, &ev) != 0) {
      return false;
    }
  }
  return true;
}

bool NetServer::Run() {
  t0_us_ = 0;
  t0_us_ = LoopMicros();
  if (telemetry_ != nullptr) {
    // Span timestamps become "microseconds since Run() began" — the same
    // timeline Trace() stamps loop events with.
    telemetry_->SetOrigin(t0_us_);
  }
  const bool instrument = loop_iterations_ != nullptr;
  // A hub-attached shard wakes periodically to epoch-publish its registry;
  // the plain server keeps the pure block-forever wait.
  const int wait_ms = hub_ != nullptr ? 50 : -1;
  bool ok = true;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    const int64_t t_wait0 = instrument ? RequestTelemetry::NowMicros() : 0;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, wait_ms);
    const int64_t t_work0 = instrument ? RequestTelemetry::NowMicros() : 0;
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SPOTCACHE_LOG(kError) << "epoll_wait failed: " << strerror(errno);
      ok = false;
      break;
    }
    for (int i = 0;
         i < n && !stop_requested_.load(std::memory_order_relaxed); ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptReady(listen_fd_, /*metrics=*/false);
        continue;
      }
      if (fd == metrics_listen_fd_) {
        AcceptReady(metrics_listen_fd_, /*metrics=*/true);
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t tick = 0;
        (void)!::read(wake_fd_, &tick, sizeof(tick));
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch
      }
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn, "hangup");
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ConnReadable(conn);
        // The connection may be gone now; re-check before write handling.
        if (conns_.find(fd) == conns_.end()) {
          continue;
        }
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        ConnWritable(conn);
      }
    }
    if (core_.sharded()) {
      core_.ServiceInbox();  // peers' ops, queued while we were waiting
    }
    if (reload_requested_.load(std::memory_order_relaxed)) {
      reload_requested_.store(false, std::memory_order_relaxed);
      if (on_reload_) {
        on_reload_();  // loop context: safe to touch handler state
      }
    }
    MaybeDumpTelemetry();
    MaybeFlushHub(/*force=*/false);
    if (instrument) {
      const int64_t t_end = RequestTelemetry::NowMicros();
      loop_wait_hist_->Record(static_cast<double>(t_work0 - t_wait0) * 1e-6);
      loop_work_hist_->Record(static_cast<double>(t_end - t_work0) * 1e-6);
      loop_iterations_->Increment();
      if (config_.stall_threshold_us > 0 &&
          t_end - t_work0 > config_.stall_threshold_us) {
        loop_stalls_->Increment();
        Trace("loop_stall",
              {{"work_us", EventTracer::JsonNumber(t_end - t_work0)},
               {"events", EventTracer::JsonNumber(static_cast<int64_t>(n))}});
      }
    }
  }
  if (core_.sharded()) {
    // Shutdown drain: peers may still be blocked awaiting ops we owe them.
    // Announce our exit, then keep servicing our inbox until every shard has
    // left its loop — after which no op can be outstanding (each op is
    // awaited within the batch that created it).
    ShardExchange* ex = shard_ctx_.exchange;
    ex->NotifyStopped();
    while (!ex->AllStopped()) {
      core_.ServiceInbox();
      std::this_thread::yield();
    }
    core_.ServiceInbox();
  }
  MaybeFlushHub(/*force=*/true);
  return ok;
}

void NetServer::Stop() {
  // Async-signal-safe: one relaxed atomic store + one write(2). Sticky, so a
  // SIGTERM arriving between the readiness line and Run() entry still stops
  // the loop (the fleet supervisor terminates fast enough to hit that
  // window).
  stop_requested_.store(true, std::memory_order_relaxed);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::RequestTelemetryDump() {
  // Async-signal-safe: one relaxed atomic store + one write(2).
  dump_requested_.store(true, std::memory_order_relaxed);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::SetHandler(RequestHandler* handler) {
  handler_ = handler != nullptr ? handler : &core_;
  handler_->set_telemetry(telemetry_.get());
}

void NetServer::SetReloadHandler(std::function<void()> on_reload) {
  on_reload_ = std::move(on_reload);
}

void NetServer::RequestReload() {
  // Async-signal-safe: one relaxed atomic store + one write(2).
  reload_requested_.store(true, std::memory_order_relaxed);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::MaybeDumpTelemetry() {
  const bool requested = dump_requested_.load(std::memory_order_relaxed);
  const bool slow = telemetry_ != nullptr && telemetry_->dump_pending();
  if (!requested && !slow) {
    return;
  }
  const int64_t now = LoopMicros();
  if (!requested && now - last_auto_dump_us_ < 1'000'000) {
    return;  // debounced; dump_pending stays set and retries next iteration
  }
  dump_requested_.store(false, std::memory_order_relaxed);
  last_auto_dump_us_ = now;
  if (telemetry_ != nullptr) {
    telemetry_->clear_dump_pending();
  }
  DumpTelemetry(requested ? "signal" : "slow_request");
}

void NetServer::DumpTelemetry(const char* reason) {
  // Shards append to one shared span file; the dump mutex keeps each dump's
  // JSONL lines contiguous.
  std::unique_lock<std::mutex> dump_lock;
  if (dump_mu_ != nullptr) {
    dump_lock = std::unique_lock<std::mutex>(*dump_mu_);
  }
  size_t spans = 0;
  if (telemetry_ != nullptr && !config_.span_dump_path.empty()) {
    spans = telemetry_->ring_size();
    std::ofstream out(config_.span_dump_path, std::ios::app);
    if (out) {
      out << telemetry_->RenderFlightRecorderJsonl();
    } else {
      SPOTCACHE_LOG(kWarn) << "flight-recorder dump failed: "
                           << config_.span_dump_path;
    }
  }
  if (!config_.metrics_dump_path.empty()) {
    if (hub_ != nullptr) {
      MaybeFlushHub(/*force=*/true);
      WriteStringToFile(config_.metrics_dump_path, hub_->RenderPrometheus());
    } else if (obs_ != nullptr) {
      WriteStringToFile(config_.metrics_dump_path,
                        ToPrometheusText(obs_->registry));
    }
  }
  SPOTCACHE_LOG(kInfo) << "telemetry dump (" << reason << "): " << spans
                       << " spans";
  Trace("telemetry_dump",
        {{"reason", EventTracer::JsonString(reason)},
         {"spans", EventTracer::JsonNumber(static_cast<int64_t>(spans))}});
}

void NetServer::AcceptReady(int listen_fd, bool metrics) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or transient accept error: wait for the next event
    }
    // Hash-dispatch accept fallback: the dispatcher shard accepts for
    // everyone and round-robins fds to the other shards (kAdoptConn,
    // awaited so the fd has exactly one owner at any instant).
    if (!metrics && dispatcher_ && core_.sharded()) {
      const uint32_t target = dispatch_rr_++ % core_.shard_count();
      if (target != shard_ctx_.self) {
        CrossShardOp op;
        op.kind = CrossShardOp::Kind::kAdoptConn;
        op.fd = fd;
        shard_ctx_.exchange->Submit(shard_ctx_.self, target, &op);
        shard_ctx_.exchange->Wake(target);
        shard_ctx_.exchange->AwaitOp(shard_ctx_.self, &op);
        continue;
      }
    }
    // Scrape connections have their own small cap so metrics stay reachable
    // even when the cache listener is at max_connections, and vice versa.
    const bool over_limit = metrics
                                ? metrics_conns_ >= kMaxMetricsConns
                                : conns_.size() - metrics_conns_ >=
                                      config_.max_connections;
    if (over_limit) {
      if (!metrics && conns_rejected_ != nullptr) {
        conns_rejected_->Increment();
      }
      ::close(fd);
      continue;
    }
    RegisterConn(fd, metrics);
  }
}

void NetServer::RegisterConn(int fd, bool metrics) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->id = next_conn_id_++;
  conn->is_metrics = metrics;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  if (metrics) {
    ++metrics_conns_;
  } else {
    if (conns_opened_ != nullptr) {
      conns_opened_->Increment();
    }
    Trace("conn_open", {{"conn", EventTracer::JsonNumber(
                                     static_cast<int64_t>(conn->id))}});
  }
  conns_.emplace(fd, std::move(conn));
  if (conns_.size() > conns_high_water_) {
    conns_high_water_ = conns_.size();
    if (conns_hw_gauge_ != nullptr) {
      conns_hw_gauge_->Set(static_cast<double>(conns_high_water_));
    }
  }
}

void NetServer::AdoptFd(int fd) {
  if (conns_.size() - metrics_conns_ >= config_.max_connections) {
    if (conns_rejected_ != nullptr) {
      conns_rejected_->Increment();
    }
    ::close(fd);
    return;
  }
  RegisterConn(fd, /*metrics=*/false);
}

void NetServer::ExecuteShardOp(CrossShardOp* op) {
  if (op->kind == CrossShardOp::Kind::kAdoptConn) {
    AdoptFd(op->fd);
    op->done.store(true, std::memory_order_release);
    return;
  }
  core_.ExecuteCrossOp(op);
}

void NetServer::ConfigureShard(const ShardContext& ctx) {
  shard_ctx_ = ctx;
  core_.ConfigureShard(ctx);
}

void NetServer::MaybeFlushHub(bool force) {
  if (hub_ == nullptr || obs_ == nullptr) {
    return;
  }
  const int64_t now = LoopMicros();
  if (!force && now - last_hub_flush_us_ < 100'000) {
    return;
  }
  last_hub_flush_us_ = now;
  hub_->Publish(hub_slot_, obs_->registry);
  // Shard 0 also owns publishing the shared control-plane registry
  // (resilience counters live there) into the hub's dedicated last slot.
  if (shard_ctx_.self == 0 && shard_ctx_.system_obs != nullptr &&
      shard_ctx_.system_mu != nullptr &&
      hub_->slots() > shard_ctx_.count) {
    std::lock_guard<std::mutex> lock(*shard_ctx_.system_mu);
    hub_->Publish(hub_->slots() - 1, shard_ctx_.system_obs->registry);
  }
}

void NetServer::ConnReadable(Connection* conn) {
  if (conn->is_metrics) {
    MetricsReadable(conn);
    return;
  }
  for (;;) {
    char* dst = conn->parser.WritePtr(config_.recv_chunk);
    const ssize_t n = ::recv(conn->fd, dst, config_.recv_chunk, 0);
    if (n > 0) {
      conn->parser.Commit(static_cast<size_t>(n));
      if (bytes_in_ != nullptr) {
        bytes_in_->Increment(n);
      }
      if (static_cast<size_t>(n) < config_.recv_chunk) {
        break;  // drained the socket
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn, "eof");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConn(conn, "read_error");
    return;
  }
  Drain(conn);
}

void NetServer::MetricsReadable(Connection* conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->http_in.append(buf, static_cast<size_t>(n));
      if (conn->http_in.size() > 16 * 1024) {
        CloseConn(conn, "metrics_overflow");
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn, "eof");
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConn(conn, "read_error");
    return;
  }
  // Any complete HTTP request header gets the metrics snapshot; the path is
  // ignored (the endpoint serves exactly one document).
  if (conn->http_responded ||
      conn->http_in.find("\r\n\r\n") == std::string::npos) {
    return;
  }
  conn->http_responded = true;
  if (metrics_scrapes_ != nullptr) {
    metrics_scrapes_->Increment();
  }
  std::string body;
  if (hub_ != nullptr) {
    // Publish our own registry first so the scrape includes this shard's
    // freshest epoch, then render the cross-shard aggregate.
    MaybeFlushHub(/*force=*/true);
    body = hub_->RenderPrometheus();
  } else if (obs_ != nullptr) {
    body = ToPrometheusText(obs_->registry);
  }
  char header[160];
  const int header_len = snprintf(
      header, sizeof(header),
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      body.size());
  conn->pending_out.append(header, static_cast<size_t>(header_len));
  conn->pending_out.append(body);
  conn->close_after_flush = true;
  Flush(conn);
}

void NetServer::Drain(Connection* conn) {
  if (core_.sharded()) {
    DrainSharded(conn);
    return;
  }
  const int64_t now = NowUnix();
  RequestTelemetry* t = telemetry_.get();
  if (t != nullptr) {
    t->BeginBatch(conn->id);
  }
  for (;;) {
    if (t != nullptr) {
      t->BeginRequest();
    }
    const ParseStatus st = conn->parser.Next();
    if (st == ParseStatus::kNeedMore) {
      if (t != nullptr) {
        t->OnAbandoned();
      }
      break;
    }
    if (st == ParseStatus::kError) {
      if (t != nullptr) {
        t->OnParsed(TelemetryOp::kOther, 0);
      }
      handler_->HandleParseError(conn->parser.error(), &conn->assembler);
      if (t != nullptr) {
        t->OnExecuted(RequestOutcome::kError, 0);
      }
      Trace("protocol_error",
            {{"conn",
              EventTracer::JsonNumber(static_cast<int64_t>(conn->id))},
             {"kind",
              EventTracer::JsonString(ToString(conn->parser.error()))}});
      continue;
    }
    if (!handler_->Handle(conn->parser.request(), now, &conn->assembler)) {
      conn->close_after_flush = true;
      break;
    }
  }
  FlushTimed(conn, t);
}

void NetServer::DrainSharded(Connection* conn) {
  const int64_t now = NowUnix();
  RequestTelemetry* t = telemetry_.get();
  if (t != nullptr) {
    t->BeginBatch(conn->id);
  }
  // Phase 1: parse everything buffered into owned events (the parser's
  // string_views die on the next Next(), and scatter-ahead needs the whole
  // batch before execution starts).
  events_.clear();
  bool ended_need_more = false;
  for (;;) {
    const ParseStatus st = conn->parser.Next();
    if (st == ParseStatus::kNeedMore) {
      ended_need_more = true;
      break;
    }
    if (st == ParseStatus::kError) {
      PendingEvent& ev = events_.emplace_back();
      ev.is_error = true;
      ev.error = conn->parser.error();
      Trace("protocol_error",
            {{"conn",
              EventTracer::JsonNumber(static_cast<int64_t>(conn->id))},
             {"kind",
              EventTracer::JsonString(ToString(conn->parser.error()))}});
      continue;
    }
    const TextRequest& req = conn->parser.request();
    PendingEvent& ev = events_.emplace_back();
    ev.verb = req.verb;
    ev.keys.reserve(req.keys.size());
    for (const std::string_view key : req.keys) {
      ev.keys.emplace_back(key);
    }
    ev.flags = req.flags;
    ev.exptime = req.exptime;
    ev.delay_s = req.delay_s;
    ev.stats_arg = std::string(req.stats_arg);
    ev.data = std::string(req.data);
    ev.noreply = req.noreply;
    if (req.verb == Verb::kQuit) {
      break;  // the single-threaded drain stops here too (close after quit)
    }
  }
  // Phase 2: scatter/execute in request order.
  if (!events_.empty() &&
      !core_.ExecuteBatch(events_, now, &conn->assembler)) {
    conn->close_after_flush = true;
  }
  if (t != nullptr && ended_need_more) {
    // The trailing partial request consumes a sampler slot exactly like the
    // single-threaded drain's abandoned BeginRequest.
    t->BeginRequest();
    t->OnAbandoned();
  }
  FlushTimed(conn, t);
}

void NetServer::FlushTimed(Connection* conn, RequestTelemetry* t) {
  // Time the flush only when spans are waiting for their write stamp —
  // unsampled batches skip both clock reads.
  if (t != nullptr && t->batch_has_spans()) {
    const int64_t w0 = RequestTelemetry::NowMicros();
    Flush(conn);
    t->EndBatch(RequestTelemetry::NowMicros() - w0);
  } else {
    Flush(conn);
    if (t != nullptr) {
      t->EndBatch(0);
    }
  }
}

void NetServer::Flush(Connection* conn) {
  // Drain any previously buffered bytes first to preserve ordering.
  while (conn->pending_sent < conn->pending_out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->pending_out.data() + conn->pending_sent,
               conn->pending_out.size() - conn->pending_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->pending_sent += static_cast<size_t>(n);
      if (bytes_out_ != nullptr) {
        bytes_out_->Increment(n);
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConn(conn, "write_error");
    return;
  }
  if (conn->pending_sent == conn->pending_out.size()) {
    conn->pending_out.clear();
    conn->pending_sent = 0;
  }

  const auto& iov = conn->assembler.iovecs();
  size_t iov_index = 0;
  size_t iov_offset = 0;
  if (conn->pending_out.empty()) {
    while (iov_index < iov.size()) {
      // writev caps at IOV_MAX vectors per call; loop in windows.
      iovec local[64];
      int cnt = 0;
      for (size_t i = iov_index; i < iov.size() && cnt < 64; ++i, ++cnt) {
        local[cnt] = iov[i];
        if (cnt == 0 && iov_offset > 0) {
          local[0].iov_base = static_cast<char*>(local[0].iov_base) + iov_offset;
          local[0].iov_len -= iov_offset;
        }
      }
      const ssize_t n = ::writev(conn->fd, local, cnt);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        CloseConn(conn, "write_error");
        return;
      }
      if (bytes_out_ != nullptr) {
        bytes_out_->Increment(n);
      }
      size_t left = static_cast<size_t>(n);
      while (left > 0 && iov_index < iov.size()) {
        const size_t avail = iov[iov_index].iov_len - iov_offset;
        if (left >= avail) {
          left -= avail;
          ++iov_index;
          iov_offset = 0;
        } else {
          iov_offset += left;
          left = 0;
        }
      }
    }
  }
  // Anything unsent gets copied out of the assembler (whose pins die on
  // Clear) into the pending buffer.
  for (size_t i = iov_index; i < iov.size(); ++i) {
    const char* base = static_cast<const char*>(iov[i].iov_base);
    size_t len = iov[i].iov_len;
    if (i == iov_index && iov_offset > 0) {
      base += iov_offset;
      len -= iov_offset;
    }
    conn->pending_out.append(base, len);
  }
  conn->assembler.Clear();

  const size_t backlog = conn->pending_out.size() - conn->pending_sent;
  if (backlog > pending_out_high_water_) {
    pending_out_high_water_ = backlog;
    if (pending_hw_gauge_ != nullptr) {
      pending_hw_gauge_->Set(static_cast<double>(backlog));
    }
  }
  if (backlog > config_.max_output_buffer) {
    if (slow_closes_ != nullptr) {
      slow_closes_->Increment();
    }
    CloseConn(conn, "slow_consumer");
    return;
  }
  if (conn->pending_out.empty() && conn->close_after_flush) {
    CloseConn(conn, "quit");
    return;
  }
  const bool want_write = !conn->pending_out.empty();
  if (want_write != conn->want_write) {
    conn->want_write = want_write;
    UpdateEpoll(conn);
  }
}

void NetServer::ConnWritable(Connection* conn) { Flush(conn); }

void NetServer::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::CloseConn(Connection* conn, const char* reason) {
  if (conn->is_metrics) {
    --metrics_conns_;
  } else {
    Trace("conn_close",
          {{"conn", EventTracer::JsonNumber(static_cast<int64_t>(conn->id))},
           {"reason", EventTracer::JsonString(reason)}});
    if (conns_closed_ != nullptr) {
      conns_closed_->Increment();
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
}

}  // namespace spotcache::net
