// Scatter-gather response assembly for the serving path.
//
// A response is a sequence of iovecs: small generated fragments (VALUE
// headers, status lines) are formatted into a block-arena scratch space with
// stable addresses, while item payloads are referenced in place and pinned
// (shared_ptr) so a batched writev stays valid even if a later request in
// the batch evicts the item. Adjacent scratch fragments coalesce into one
// iovec, so a typical "VALUE...\r\n<data>\r\nEND\r\n" reply is 3 vectors.
//
// The assembler is reused across batches: Clear() drops the pins and rewinds
// the arena without freeing it, so steady-state assembly allocates nothing.

#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace spotcache::net {

class ResponseAssembler {
 public:
  ResponseAssembler() = default;

  /// Copies `bytes` into the scratch arena (for headers and status lines).
  void Append(std::string_view bytes);
  /// printf into the scratch arena (single fragment; must fit one block).
  void Appendf(const char* fmt, ...) __attribute__((format(printf, 2, 3)));
  /// References `bytes` in place, keeping `pin` alive until Clear().
  void AppendPinned(std::string_view bytes,
                    std::shared_ptr<const std::string> pin);

  const std::vector<iovec>& iovecs() const { return iov_; }
  size_t total_bytes() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Flattens to one string (tests, and the copy-out path after a short
  /// write).
  std::string Flatten() const;

  /// Releases pins and rewinds the arena; capacity is retained.
  void Clear();

 private:
  static constexpr size_t kBlockBytes = 16 * 1024;

  char* Reserve(size_t n);
  void PushIov(const char* base, size_t len, bool coalescable);

  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_ = 0;     // arena block in use
  size_t offset_ = 0;    // write offset inside that block
  std::vector<iovec> iov_;
  bool last_coalescable_ = false;
  size_t total_ = 0;
  std::vector<std::shared_ptr<const std::string>> pins_;
};

}  // namespace spotcache::net
