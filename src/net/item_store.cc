#include "src/net/item_store.h"

namespace spotcache::net {

namespace {

/// Accounting cost of one item: key + payload + fixed bookkeeping overhead
/// (list node, index slot, item header), mirroring memcached's per-item
/// overhead in spirit.
size_t CostOf(std::string_view key, size_t data_size) {
  return key.size() + data_size + 64;
}

}  // namespace

int64_t ResolveExptime(int64_t exptime, int64_t now) {
  if (exptime == 0) {
    return 0;
  }
  if (exptime < 0) {
    return -1;
  }
  return exptime <= kRelativeExpiryCutoff ? now + exptime : exptime;
}

ItemStore::ItemStore(size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

bool ItemStore::IsLive(const Item& item, int64_t now) const {
  if (item.expires_at < 0) {
    return false;
  }
  if (item.expires_at > 0 && item.expires_at <= now) {
    return false;
  }
  if (flush_at_ >= 0 && now >= flush_at_ && item.stored_at < flush_at_) {
    return false;
  }
  return true;
}

void ItemStore::Erase(LruList::iterator it) {
  bytes_used_ -= CostOf(it->key, it->item.data->size());
  index_.erase(std::string_view(it->key));
  lru_.erase(it);
}

void ItemStore::MakeRoom(size_t need, int64_t now) {
  while (bytes_used_ + need > capacity_bytes_ && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    if (IsLive(victim->item, now)) {
      ++evictions_;
    } else {
      ++expired_reaped_;
    }
    Erase(victim);
  }
}

ItemStore::StoreResult ItemStore::Upsert(std::string_view key, uint32_t flags,
                                         int64_t exptime, std::string_view data,
                                         int64_t now) {
  const size_t need = CostOf(key, data.size());
  if (need > capacity_bytes_) {
    return StoreResult::kNotStored;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    Erase(it->second);
  }
  MakeRoom(need, now);
  lru_.push_front(Entry{std::string(key), Item{}});
  Entry& e = lru_.front();
  e.item.data = std::make_shared<const std::string>(data);
  e.item.flags = flags;
  e.item.expires_at = ResolveExptime(exptime, now);
  e.item.stored_at = now;
  e.item.cas = NextCas();
  bytes_used_ += need;
  index_.emplace(std::string_view(e.key), lru_.begin());
  return StoreResult::kStored;
}

ItemStore::StoreResult ItemStore::Set(std::string_view key, uint32_t flags,
                                      int64_t exptime, std::string_view data,
                                      int64_t now) {
  return Upsert(key, flags, exptime, data, now);
}

ItemStore::StoreResult ItemStore::Add(std::string_view key, uint32_t flags,
                                      int64_t exptime, std::string_view data,
                                      int64_t now) {
  auto it = index_.find(key);
  if (it != index_.end() && IsLive(it->second->item, now)) {
    return StoreResult::kNotStored;
  }
  return Upsert(key, flags, exptime, data, now);
}

ItemStore::StoreResult ItemStore::Replace(std::string_view key, uint32_t flags,
                                          int64_t exptime,
                                          std::string_view data, int64_t now) {
  auto it = index_.find(key);
  if (it == index_.end() || !IsLive(it->second->item, now)) {
    return StoreResult::kNotStored;
  }
  return Upsert(key, flags, exptime, data, now);
}

const Item* ItemStore::Get(std::string_view key, int64_t now) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  if (!IsLive(it->second->item, now)) {
    ++expired_reaped_;
    Erase(it->second);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  it->second = lru_.begin();
  return &it->second->item;
}

bool ItemStore::Delete(std::string_view key, int64_t now) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return false;
  }
  const bool live = IsLive(it->second->item, now);
  Erase(it->second);
  return live;
}

bool ItemStore::Touch(std::string_view key, int64_t exptime, int64_t now) {
  auto it = index_.find(key);
  if (it == index_.end() || !IsLive(it->second->item, now)) {
    return false;
  }
  it->second->item.expires_at = ResolveExptime(exptime, now);
  return true;
}

void ItemStore::FlushAll(int64_t now, int64_t delay_s) {
  flush_at_ = now + delay_s;
  // Items stored at exactly the flush point stay visible (stored_at <
  // flush_at_ is the invisibility test), matching memcached's "new sets
  // after flush_all take effect" rule.
}

}  // namespace spotcache::net
