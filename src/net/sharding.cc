#include "src/net/sharding.h"

#include <unistd.h>

#include <thread>

namespace spotcache::net {

namespace {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ShardExchange::ShardExchange(uint32_t shard_count, size_t ring_capacity)
    : shard_count_(shard_count),
      executors_(shard_count),
      wake_fds_(shard_count, -1) {
  rings_.reserve(static_cast<size_t>(shard_count) * shard_count);
  for (uint32_t i = 0; i < shard_count * shard_count; ++i) {
    rings_.push_back(std::make_unique<SpscOpRing>(ring_capacity));
  }
}

void ShardExchange::SetExecutor(uint32_t self,
                                std::function<void(CrossShardOp*)> fn) {
  executors_[self] = std::move(fn);
}

void ShardExchange::SetWakeFd(uint32_t to, int fd) { wake_fds_[to] = fd; }

void ShardExchange::Submit(uint32_t from, uint32_t to, CrossShardOp* op) {
  SpscOpRing& r = ring(from, to);
  while (!r.Push(op)) {
    // Ring full: the target is behind. Service our own inbox (the target
    // may itself be blocked on an op we owe it), nudge it, and retry.
    ServiceInbox(from);
    Wake(to);
    std::this_thread::yield();
  }
}

void ShardExchange::Wake(uint32_t to) {
  const int fd = wake_fds_[to];
  if (fd >= 0) {
    const uint64_t one = 1;
    (void)!::write(fd, &one, sizeof(one));
  }
}

size_t ShardExchange::ServiceInbox(uint32_t self) {
  size_t serviced = 0;
  const auto& exec = executors_[self];
  for (uint32_t from = 0; from < shard_count_; ++from) {
    if (from == self) {
      continue;
    }
    SpscOpRing& r = ring(from, self);
    while (CrossShardOp* op = r.Pop()) {
      exec(op);
      ++serviced;
    }
  }
  return serviced;
}

void ShardExchange::AwaitOp(uint32_t self, CrossShardOp* op) {
  if (op->done.load(std::memory_order_acquire)) {
    return;
  }
  uint32_t spins = 0;
  for (;;) {
    const size_t serviced = ServiceInbox(self);
    if (op->done.load(std::memory_order_acquire)) {
      return;
    }
    if (serviced == 0) {
      // Nothing to do locally: the owner is mid-batch. Back off so a
      // core-oversubscribed host (CI runners) still schedules the owner.
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      } else {
        CpuRelax();
      }
    }
  }
}

void ShardExchange::NotifyStopped() {
  stopped_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace spotcache::net
