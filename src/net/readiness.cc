#include "src/net/readiness.h"

namespace spotcache::net {

namespace {

/// Parses `text` as a bare decimal port in [1, 65535]: digits only, no sign,
/// no whitespace, no trailing junk.
std::optional<uint16_t> ParsePort(std::string_view text) {
  if (text.empty() || text.size() > 5) {
    return std::nullopt;
  }
  uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  if (value == 0 || value > 65535) {
    return std::nullopt;
  }
  return static_cast<uint16_t>(value);
}

std::optional<uint16_t> ParseAfterPrefix(std::string_view line,
                                         std::string_view prefix) {
  if (line.size() <= prefix.size() ||
      line.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  std::string_view rest = line.substr(prefix.size());
  if (!rest.empty() && rest.back() == '\r') {
    rest.remove_suffix(1);  // tolerate CRLF-translated pipes
  }
  return ParsePort(rest);
}

}  // namespace

std::optional<uint16_t> ParseListeningLine(std::string_view line) {
  return ParseAfterPrefix(line, "listening ");
}

std::optional<uint16_t> ParseMetricsListeningLine(std::string_view line) {
  return ParseAfterPrefix(line, "metrics listening ");
}

bool ReadinessParser::Feed(std::string_view chunk) {
  bool port_arrived = false;
  pending_.append(chunk);
  for (;;) {
    const size_t nl = pending_.find('\n');
    if (nl == std::string::npos) {
      return port_arrived;
    }
    const std::string_view line(pending_.data(), nl);
    if (!port_.has_value()) {
      if (const auto p = ParseListeningLine(line); p.has_value()) {
        port_ = p;
        port_arrived = true;
      }
    }
    if (!metrics_port_.has_value()) {
      if (const auto p = ParseMetricsListeningLine(line); p.has_value()) {
        metrics_port_ = p;
      }
    }
    pending_.erase(0, nl + 1);
  }
}

}  // namespace spotcache::net
