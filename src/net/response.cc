#include "src/net/response.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace spotcache::net {

char* ResponseAssembler::Reserve(size_t n) {
  if (blocks_.empty()) {
    blocks_.push_back(std::make_unique<char[]>(kBlockBytes));
  }
  if (offset_ + n > kBlockBytes) {
    ++block_;
    offset_ = 0;
    if (block_ == blocks_.size()) {
      blocks_.push_back(std::make_unique<char[]>(kBlockBytes));
    }
  }
  return blocks_[block_].get() + offset_;
}

void ResponseAssembler::PushIov(const char* base, size_t len,
                                bool coalescable) {
  if (len == 0) {
    return;
  }
  if (coalescable && last_coalescable_ && !iov_.empty()) {
    iovec& back = iov_.back();
    if (static_cast<const char*>(back.iov_base) + back.iov_len == base) {
      back.iov_len += len;
      total_ += len;
      return;
    }
  }
  iov_.push_back({const_cast<char*>(base), len});
  last_coalescable_ = coalescable;
  total_ += len;
}

void ResponseAssembler::Append(std::string_view bytes) {
  // Oversized fragments (never expected for protocol text) split cleanly
  // across blocks.
  while (!bytes.empty()) {
    const size_t take = std::min(bytes.size(), kBlockBytes);
    char* dst = Reserve(take);
    std::memcpy(dst, bytes.data(), take);
    offset_ += take;
    PushIov(dst, take, /*coalescable=*/true);
    bytes.remove_prefix(take);
  }
}

void ResponseAssembler::Appendf(const char* fmt, ...) {
  char* dst = Reserve(512);
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(dst, 512, fmt, ap);
  va_end(ap);
  if (n <= 0) {
    return;
  }
  offset_ += static_cast<size_t>(n);
  PushIov(dst, static_cast<size_t>(n), /*coalescable=*/true);
}

void ResponseAssembler::AppendPinned(std::string_view bytes,
                                     std::shared_ptr<const std::string> pin) {
  if (pin != nullptr) {
    pins_.push_back(std::move(pin));
  }
  PushIov(bytes.data(), bytes.size(), /*coalescable=*/false);
  last_coalescable_ = false;
}

std::string ResponseAssembler::Flatten() const {
  std::string out;
  out.reserve(total_);
  for (const iovec& v : iov_) {
    out.append(static_cast<const char*>(v.iov_base), v.iov_len);
  }
  return out;
}

void ResponseAssembler::Clear() {
  iov_.clear();
  pins_.clear();
  block_ = 0;
  offset_ = 0;
  total_ = 0;
  last_coalescable_ = false;
}

}  // namespace spotcache::net
