// The server's authoritative byte store: string key -> (flags, expiry, cas,
// payload), LRU-bounded by byte capacity, with memcached's expiry rules.
//
// Payloads are held behind shared_ptr<const string> so the response
// assembler can reference them zero-copy across a batched writev even if a
// later request in the same batch evicts the item.
//
// Expiry follows memcached 1.6: exptime 0 never expires, negative is
// immediately expired, values up to 30 days are relative seconds, larger
// values are absolute unix seconds. flush_all(delay) marks everything stored
// before the flush point invisible once the point passes. All time comes in
// through `now` parameters, so the store is a pure function of its inputs
// and deterministic under test clocks.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace spotcache::net {

/// Seconds threshold below which exptime is relative (memcached's constant).
inline constexpr int64_t kRelativeExpiryCutoff = 60 * 60 * 24 * 30;

/// Resolves a wire exptime into an absolute unix-seconds deadline.
/// Returns 0 for "never", -1 for "already expired".
int64_t ResolveExptime(int64_t exptime, int64_t now);

struct Item {
  std::shared_ptr<const std::string> data;
  uint32_t flags = 0;
  int64_t expires_at = 0;  // 0 = never, -1 = dead, else unix seconds
  int64_t stored_at = 0;   // for flush_all visibility
  uint64_t cas = 0;
};

class ItemStore {
 public:
  enum class StoreResult : uint8_t { kStored, kNotStored };

  explicit ItemStore(size_t capacity_bytes);

  StoreResult Set(std::string_view key, uint32_t flags, int64_t exptime,
                  std::string_view data, int64_t now);
  /// add: only if absent; replace: only if present.
  StoreResult Add(std::string_view key, uint32_t flags, int64_t exptime,
                  std::string_view data, int64_t now);
  StoreResult Replace(std::string_view key, uint32_t flags, int64_t exptime,
                      std::string_view data, int64_t now);

  /// Live item or nullptr; promotes the item to MRU on hit.
  const Item* Get(std::string_view key, int64_t now);
  bool Delete(std::string_view key, int64_t now);
  bool Touch(std::string_view key, int64_t exptime, int64_t now);
  /// Marks all currently stored items dead once `now + delay_s` passes.
  void FlushAll(int64_t now, int64_t delay_s);

  /// Sharded serving: draws cas values from a process-wide atomic sequence
  /// instead of the private counter, so cas stays unique across shard
  /// partitions (and, for a sequential client, identical to the
  /// single-threaded server's numbering). Null (the default) keeps the
  /// private counter — the single-threaded path touches no atomics.
  void set_shared_cas(std::atomic<uint64_t>* seq) { shared_cas_ = seq; }

  size_t item_count() const { return index_.size(); }
  size_t bytes_used() const { return bytes_used_; }
  size_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t expired_reaped() const { return expired_reaped_; }

 private:
  struct Entry {
    std::string key;
    Item item;
  };
  using LruList = std::list<Entry>;

  bool IsLive(const Item& item, int64_t now) const;
  /// Removes the entry (index + list + byte accounting).
  void Erase(LruList::iterator it);
  /// Evicts LRU items until `need` more bytes fit.
  void MakeRoom(size_t need, int64_t now);
  StoreResult Upsert(std::string_view key, uint32_t flags, int64_t exptime,
                     std::string_view data, int64_t now);

  uint64_t NextCas() {
    return shared_cas_ != nullptr
               ? shared_cas_->fetch_add(1, std::memory_order_relaxed) + 1
               : next_cas_++;
  }

  size_t capacity_bytes_;
  size_t bytes_used_ = 0;
  uint64_t next_cas_ = 1;
  std::atomic<uint64_t>* shared_cas_ = nullptr;
  int64_t flush_at_ = -1;  // <0: no flush pending/applied
  uint64_t evictions_ = 0;
  uint64_t expired_reaped_ = 0;

  LruList lru_;  // front = MRU
  // Keys view into the list entries' stable storage.
  std::unordered_map<std::string_view, LruList::iterator> index_;
};

}  // namespace spotcache::net
