// NetServer: the non-blocking TCP serving surface.
//
// Single-threaded epoll loop (level-triggered), one state machine per
// connection: bytes are recv()'d straight into the connection's
// RequestParser (zero-copy WritePtr/Commit), every complete request is
// executed by the shared ServerCore, and the batch's responses go out in one
// writev over the assembler's iovecs. Short writes spill the remainder into
// a per-connection pending buffer drained on EPOLLOUT; a pending buffer that
// exceeds `max_output_buffer` marks a slow consumer and the connection is
// dropped (counted + traced) rather than ballooning memory.
//
// Observability uses the PR-2 vocabulary: `net/*` counters
// (conns_opened/conns_closed/bytes_in/bytes_out/slow_consumer_closes plus
// ServerCore's request counters) and JSONL `conn_open` / `conn_close` /
// `protocol_error` events stamped with microseconds since server start.
//
// Run() owns the calling thread until Stop() (thread-safe, eventfd wakeup)
// or a fatal listener error. Expiry time is injectable (`SetClock`) so tests
// drive memcached expiry semantics deterministically over real sockets.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/net/protocol.h"
#include "src/net/response.h"
#include "src/net/server_core.h"
#include "src/obs/obs.h"

namespace spotcache::net {

struct NetServerConfig {
  std::string bind_host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see NetServer::port() after Start()
  int listen_backlog = 512;
  size_t max_connections = 1024;
  /// recv() chunk per readiness callback.
  size_t recv_chunk = 64 * 1024;
  /// Slow-consumer cap on buffered unsent bytes before the connection drops.
  size_t max_output_buffer = 8 * 1024 * 1024;
  ServerCoreConfig core;
};

class NetServer {
 public:
  NetServer(const NetServerConfig& config, SpotCacheSystem* system = nullptr,
            Obs* obs = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens. Returns false (with errno intact) on failure.
  bool Start();
  /// The bound port (after Start(); useful with port = 0).
  uint16_t port() const { return port_; }

  /// Serves until Stop(). Returns false if the loop died on a fatal error.
  bool Run();
  /// Thread-safe shutdown request.
  void Stop();

  /// Unix-seconds clock used for expiry (defaults to the wall clock).
  void SetClock(std::function<int64_t()> now_unix);

  ServerCore& core() { return core_; }
  size_t connection_count() const { return conns_.size(); }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    RequestParser parser;
    ResponseAssembler assembler;
    std::string pending_out;  // unsent bytes after a short write
    size_t pending_sent = 0;  // consumed prefix of pending_out
    bool want_write = false;
    bool close_after_flush = false;
  };

  void AcceptReady();
  void ConnReadable(Connection* conn);
  void ConnWritable(Connection* conn);
  /// Runs parse/execute over buffered bytes, then flushes.
  void Drain(Connection* conn);
  /// writev the assembler + pending buffer; buffers any remainder.
  void Flush(Connection* conn);
  void CloseConn(Connection* conn, const char* reason);
  void UpdateEpoll(Connection* conn);
  int64_t NowUnix() const;
  /// Microseconds since Run() began (event timestamps).
  int64_t LoopMicros() const;
  void Trace(const char* type,
             std::vector<std::pair<std::string, std::string>> fields);

  NetServerConfig config_;
  ServerCore core_;
  Obs* obs_;
  std::function<int64_t()> clock_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  bool running_ = false;
  uint64_t next_conn_id_ = 1;
  int64_t t0_us_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;

  Counter* conns_opened_ = nullptr;
  Counter* conns_closed_ = nullptr;
  Counter* conns_rejected_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Counter* slow_closes_ = nullptr;
};

}  // namespace spotcache::net
