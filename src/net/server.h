// NetServer: the non-blocking TCP serving surface.
//
// Single-threaded epoll loop (level-triggered), one state machine per
// connection: bytes are recv()'d straight into the connection's
// RequestParser (zero-copy WritePtr/Commit), every complete request is
// executed by the shared ServerCore, and the batch's responses go out in one
// writev over the assembler's iovecs. Short writes spill the remainder into
// a per-connection pending buffer drained on EPOLLOUT; a pending buffer that
// exceeds `max_output_buffer` marks a slow consumer and the connection is
// dropped (counted + traced) rather than ballooning memory.
//
// Observability uses the PR-2 vocabulary: `net/*` counters
// (conns_opened/conns_closed/bytes_in/bytes_out/slow_consumer_closes plus
// ServerCore's request counters) and JSONL `conn_open` / `conn_close` /
// `protocol_error` events stamped with microseconds since server start.
//
// Serving-path telemetry (this PR): the server owns a RequestTelemetry that
// samples request spans (parse -> route -> store -> write phases) and feeds
// always-on per-(op, outcome) latency histograms — see request_telemetry.h
// for the sampling/overhead story. The event loop itself is instrumented:
// every iteration records epoll-wait vs. work time into `net/loop/wait_s` /
// `net/loop/work_s`, and an iteration whose work phase exceeds
// `stall_threshold_us` bumps `net/loop/stalls` and emits a `loop_stall`
// trace event. High-water gauges track the worst pending-output backlog and
// peak concurrent connections.
//
// Live scrape surface: with `metrics_port >= 0` the server opens a second
// listener in the same epoll loop that answers any HTTP request with the
// Prometheus text rendering of the registry. Because the loop is
// single-threaded, a scrape renders between request batches — always a
// consistent snapshot, no locks on the hot path.
//
// Flight-recorder dumps: RequestTelemetryDump() is async-signal-safe
// (atomic flag + eventfd wakeup) — signal handlers call it to get the span
// ring appended to `span_dump_path` and a metrics snapshot written to
// `metrics_dump_path` from loop context. A request slower than the
// telemetry's `slow_request_us` triggers the same dump automatically
// (debounced to at most one per second).
//
// Run() owns the calling thread until Stop() (thread-safe, eventfd wakeup)
// or a fatal listener error. Expiry time is injectable (`SetClock`) so tests
// drive memcached expiry semantics deterministically over real sockets.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/protocol.h"
#include "src/net/request_handler.h"
#include "src/net/response.h"
#include "src/net/server_core.h"
#include "src/obs/metrics_hub.h"
#include "src/obs/obs.h"
#include "src/obs/request_telemetry.h"

namespace spotcache::net {

struct NetServerConfig {
  std::string bind_host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; see NetServer::port() after Start()
  int listen_backlog = 512;
  size_t max_connections = 1024;
  /// recv() chunk per readiness callback.
  size_t recv_chunk = 64 * 1024;
  /// Slow-consumer cap on buffered unsent bytes before the connection drops.
  size_t max_output_buffer = 8 * 1024 * 1024;
  ServerCoreConfig core;

  /// Request-span / latency sampling. Setting both sample periods to 0
  /// disables the telemetry entirely (no per-request sampler step) — the
  /// configuration bench_net_loopback uses as its uninstrumented baseline.
  RequestTelemetryConfig telemetry;
  /// A loop iteration whose work phase (everything between two epoll_waits)
  /// exceeds this is counted as a stall. <= 0 disables stall detection.
  int64_t stall_threshold_us = 10'000;
  /// Prometheus scrape listener: -1 = off, 0 = ephemeral port (see
  /// metrics_port() after Start()), else the fixed port to bind.
  int metrics_port = -1;
  /// Flight-recorder dump target (JSONL, appended per dump). Empty skips
  /// the span dump (the in-memory ring still fills).
  std::string span_dump_path;
  /// Metrics snapshot dump target (Prometheus text, overwritten per dump).
  std::string metrics_dump_path;

  /// Sharded serving: bind the cache listener with SO_REUSEPORT so N shard
  /// listeners share one port (the kernel spreads connections by 4-tuple).
  bool reuse_port = false;
  /// Hash-dispatch fallback: this shard opens no cache listener of its own
  /// and only serves connections the dispatcher shard hands over.
  bool skip_cache_listener = false;
};

class NetServer {
 public:
  NetServer(const NetServerConfig& config, SpotCacheSystem* system = nullptr,
            Obs* obs = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens (cache port + optional metrics port). Returns false
  /// (with errno intact) on failure.
  bool Start();
  /// The bound port (after Start(); useful with port = 0).
  uint16_t port() const { return port_; }
  /// The bound metrics port (0 when the scrape listener is off).
  uint16_t metrics_port() const { return metrics_port_; }

  /// Serves until Stop(). Returns false if the loop died on a fatal error.
  bool Run();
  /// Thread-safe shutdown request.
  void Stop();

  /// Requests a flight-recorder + metrics dump from loop context.
  /// Async-signal-safe (atomic store + eventfd write): signal handlers for
  /// SIGUSR1/SIGHUP call this directly.
  void RequestTelemetryDump();

  /// Substitutes `handler` for the built-in ServerCore on the single-threaded
  /// drain path (the proxy seam; see request_handler.h). Must be called
  /// before Run(); the handler must outlive the server. Incompatible with
  /// sharded serving (DrainSharded executes through ServerCore batches).
  void SetHandler(RequestHandler* handler);

  /// Installs the loop-context reload callback RequestReload() triggers.
  /// Must be called before Run(); runs on the loop thread between batches.
  void SetReloadHandler(std::function<void()> on_reload);

  /// Requests a config reload from loop context. Async-signal-safe (atomic
  /// store + eventfd write): the SIGHUP handler calls this directly.
  void RequestReload();

  /// Unix-seconds clock used for expiry (defaults to the wall clock).
  void SetClock(std::function<int64_t()> now_unix);

  ServerCore& core() { return core_; }
  const ServerCore& core() const { return core_; }
  /// The serving-path telemetry, or nullptr when disabled by config.
  RequestTelemetry* telemetry() { return telemetry_.get(); }
  size_t connection_count() const { return conns_.size(); }

  // --- Sharded serving (wired by ShardedServer; see sharded_server.h). ---

  /// Makes this server shard ctx.self of ctx.count. Must run before Start().
  void ConfigureShard(const ShardContext& ctx);
  /// Dispatcher role (hash-dispatch accept fallback): this shard accepts on
  /// behalf of everyone and round-robins the accepted fds across shards.
  void SetDispatcher(bool on) { dispatcher_ = on; }
  /// Adopts an fd handed over by the dispatcher shard. Owning thread only.
  void AdoptFd(int fd);
  /// This shard's inbox executor (installed into the ShardExchange):
  /// connection adoptions are handled here, everything else goes to the core.
  void ExecuteShardOp(CrossShardOp* op);
  /// Publishes this shard's registry into `hub` slot `slot` at epoch
  /// boundaries; scrapes then serve the hub aggregate (never a mid-update
  /// counter). Shard 0 additionally publishes the shared control-plane
  /// registry (ShardContext::system_obs) into the hub's last slot.
  void AttachMetricsHub(MetricsHub* hub, size_t slot) {
    hub_ = hub;
    hub_slot_ = slot;
  }
  /// Serializes flight-recorder dumps across shards (shared span file).
  void SetDumpMutex(std::mutex* mu) { dump_mu_ = mu; }
  /// The loop's eventfd (the exchange's wake target). Valid after Start().
  int wake_fd() const { return wake_fd_; }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    RequestParser parser;
    ResponseAssembler assembler;
    std::string pending_out;  // unsent bytes after a short write
    size_t pending_sent = 0;  // consumed prefix of pending_out
    bool want_write = false;
    bool close_after_flush = false;
    /// Metrics-scrape connection: bytes go through a tiny HTTP/1.0
    /// responder instead of the memcached parser.
    bool is_metrics = false;
    std::string http_in;  // request bytes until the blank line (metrics only)
    bool http_responded = false;
  };

  void AcceptReady(int listen_fd, bool metrics);
  void ConnReadable(Connection* conn);
  void MetricsReadable(Connection* conn);
  void ConnWritable(Connection* conn);
  /// Runs parse/execute over buffered bytes, then flushes.
  void Drain(Connection* conn);
  /// Sharded drain: parses the whole buffered batch into owned PendingEvents
  /// first (scatter-ahead needs requests that outlive the parser buffer),
  /// then executes via ServerCore::ExecuteBatch.
  void DrainSharded(Connection* conn);
  /// End-of-batch flush with the span write-stamp bookkeeping.
  void FlushTimed(Connection* conn, RequestTelemetry* t);
  /// Registers an accepted/adopted fd as a live connection (nodelay, epoll,
  /// counters, traces).
  void RegisterConn(int fd, bool metrics);
  /// Epoch-publishes this shard's registry into the hub (rate-limited unless
  /// forced).
  void MaybeFlushHub(bool force);
  /// writev the assembler + pending buffer; buffers any remainder.
  void Flush(Connection* conn);
  void CloseConn(Connection* conn, const char* reason);
  void UpdateEpoll(Connection* conn);
  /// Opens one non-blocking listener on bind_host:port; returns the fd (or
  /// -1) and writes the bound port through `bound_port`.
  int OpenListener(uint16_t port, uint16_t* bound_port);
  /// Loop-context dump service: honors RequestTelemetryDump() immediately,
  /// slow-request auto-dumps behind a 1 s debounce.
  void MaybeDumpTelemetry();
  void DumpTelemetry(const char* reason);
  int64_t NowUnix() const;
  /// Microseconds since Run() began (event timestamps).
  int64_t LoopMicros() const;
  void Trace(const char* type,
             std::vector<std::pair<std::string, std::string>> fields);

  NetServerConfig config_;
  ServerCore core_;
  /// The active request executor: &core_ unless SetHandler() swapped in a
  /// different implementation (e.g. the proxy's fan-out core).
  RequestHandler* handler_ = nullptr;
  Obs* obs_;
  std::unique_ptr<RequestTelemetry> telemetry_;
  std::function<int64_t()> clock_;

  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  uint16_t metrics_port_ = 0;
  /// Sticky stop request: set by Stop() (possibly from a signal handler,
  /// possibly before Run() has even been entered) and only ever read by the
  /// loop — a stop can never be lost to the start-up race.
  std::atomic<bool> stop_requested_{false};
  uint64_t next_conn_id_ = 1;
  int64_t t0_us_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  size_t metrics_conns_ = 0;

  std::atomic<bool> dump_requested_{false};
  int64_t last_auto_dump_us_ = -1'000'000;
  std::atomic<bool> reload_requested_{false};
  std::function<void()> on_reload_;

  // Sharded-serving state (inert in the single-threaded server).
  ShardContext shard_ctx_;
  bool dispatcher_ = false;
  uint32_t dispatch_rr_ = 0;
  MetricsHub* hub_ = nullptr;
  size_t hub_slot_ = 0;
  std::mutex* dump_mu_ = nullptr;
  int64_t last_hub_flush_us_ = -1'000'000;
  std::vector<PendingEvent> events_;  // sharded-drain scratch (reused)

  // High-water marks mirrored into gauges (kept locally so the hot path
  // compares against a plain size_t, not a double).
  size_t pending_out_high_water_ = 0;
  size_t conns_high_water_ = 0;

  Counter* conns_opened_ = nullptr;
  Counter* conns_closed_ = nullptr;
  Counter* conns_rejected_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Counter* slow_closes_ = nullptr;
  Counter* loop_iterations_ = nullptr;
  Counter* loop_stalls_ = nullptr;
  Counter* metrics_scrapes_ = nullptr;
  Histogram* loop_wait_hist_ = nullptr;
  Histogram* loop_work_hist_ = nullptr;
  Gauge* pending_hw_gauge_ = nullptr;
  Gauge* conns_hw_gauge_ = nullptr;
};

}  // namespace spotcache::net
