// ProxyCore: the memcached-speaking front of the proxy tier.
//
// Plugs into NetServer through the RequestHandler seam (request_handler.h),
// so the proxy binary reuses the entire src/net serving surface — epoll
// loop, zero-copy parser, writev assembly, backpressure, metrics scrape,
// flight recorder — and only the execution step changes: instead of an
// ItemStore lookup, every request fans out to the fleet through an
// UpstreamPool.
//
// Wire semantics are pinned byte-for-byte against direct serving by the
// conformance suite's proxy transport:
//
//   * get/gets scatter across owning upstreams (pipelined, bounded window)
//     and reassemble VALUE blocks in request-key order; unreachable keys
//     degrade to backup copies and finally to plain misses — a client can
//     see a miss where direct serving would hit, but never an error;
//   * storage/delete/touch forward to the owner and relay its status line
//     verbatim (noreply suppresses the relay, but the round trip still
//     happens so upstream cas numbering stays in lockstep);
//   * version and stats answer locally — stats is the proxy's own
//     deterministic counter block (proxy_* lines), not an upstream's;
//   * flush_all broadcasts to every upstream plus the backup;
//   * parse errors never touch an upstream: the reply comes from the same
//     ErrorReply table the server uses.
//
// Handle() runs on the server's loop thread; upstream waits are bounded by
// the pool's op timeout so one dead upstream cannot stall the loop longer
// than (timeout × rungs). Counters land in the obs registry under proxy/*.

#pragma once

#include <cstdint>
#include <string>

#include "src/net/request_handler.h"
#include "src/obs/obs.h"
#include "src/proxy/membership.h"
#include "src/proxy/upstream_pool.h"

namespace spotcache::proxy {

struct ProxyCoreConfig {
  std::string version = "spotcache-1.6.0";
  UpstreamPoolConfig upstreams;
};

/// Monotonic request counters, mirrored into proxy/* obs counters when an
/// Obs is attached. All loop-thread-only.
struct ProxyStats {
  uint64_t requests = 0;
  uint64_t gets = 0;        // get/gets commands
  uint64_t get_keys = 0;    // keys across those commands
  uint64_t get_hits = 0;    // keys served by their owning primary
  uint64_t backup_hits = 0; // keys served by the backup rung
  uint64_t misses = 0;      // keys a live rung definitively missed
  uint64_t sheds = 0;       // keys no rung could serve (reported as misses)
  uint64_t sets = 0;        // set/add/replace commands
  uint64_t set_primary = 0;
  uint64_t set_backup = 0;
  uint64_t set_failures = 0;  // SERVER_ERROR relayed: no rung reachable
  uint64_t deletes = 0;
  uint64_t touches = 0;
  uint64_t flushes = 0;
  uint64_t reloads = 0;
  uint64_t reload_failures = 0;
  uint64_t protocol_errors = 0;
};

class ProxyCore final : public net::RequestHandler {
 public:
  explicit ProxyCore(const ProxyCoreConfig& config, Obs* obs = nullptr,
                     EventTracer* tracer = nullptr);

  bool Handle(const net::TextRequest& req, int64_t now,
              net::ResponseAssembler* out) override;
  void HandleParseError(net::ParseErrorKind kind,
                        net::ResponseAssembler* out) override;
  void set_telemetry(RequestTelemetry* telemetry) override {
    telemetry_ = telemetry;
  }

  /// Re-reads `path` and applies it to the pool (loop context only — wire
  /// this behind NetServer::SetReloadHandler). Returns false (keeping the
  /// previous fleet view) when the file is unreadable or malformed.
  bool ReloadMembership(const std::string& path);

  UpstreamPool& pool() { return pool_; }
  const UpstreamPool& pool() const { return pool_; }
  const ProxyStats& stats() const { return stats_; }

 private:
  void HandleRetrieve(const net::TextRequest& req,
                      net::ResponseAssembler* out, RequestOutcome* outcome,
                      uint32_t* value_bytes);
  void HandleForwarded(const net::TextRequest& req,
                       net::ResponseAssembler* out, RequestOutcome* outcome);
  void AppendStats(net::ResponseAssembler* out);
  /// Rebuilds the forwarded wire bytes for one request (storage payload and
  /// flags included, noreply stripped).
  std::string RebuildWire(const net::TextRequest& req) const;

  ProxyCoreConfig config_;
  UpstreamPool pool_;
  RequestTelemetry* telemetry_ = nullptr;
  ProxyStats stats_;

  // Scratch reused across requests (loop-thread-only).
  std::vector<std::string_view> keys_;
  std::vector<KeyFetch> fetches_;

  // proxy/* obs counters (null when obs is detached).
  Counter* obs_requests_ = nullptr;
  Counter* obs_get_hits_ = nullptr;
  Counter* obs_backup_hits_ = nullptr;
  Counter* obs_misses_ = nullptr;
  Counter* obs_sheds_ = nullptr;
  Counter* obs_sets_ = nullptr;
  Counter* obs_absorbed_ = nullptr;
  Counter* obs_reconnects_ = nullptr;
  Counter* obs_reloads_ = nullptr;
  Counter* obs_protocol_errors_ = nullptr;
};

}  // namespace spotcache::proxy
