#include "src/proxy/membership.h"

#include <stdio.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace spotcache::proxy {

namespace {

constexpr const char* kHeader = "# spotcache fleet membership v1";

bool ParsePort(const std::string& token, uint16_t* out) {
  if (token.empty() || token.size() > 5) {
    return false;
  }
  uint32_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  if (value == 0 || value > 65535) {
    return false;
  }
  *out = static_cast<uint16_t>(value);
  return true;
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 20) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) {
      return false;  // overflow
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::optional<FleetMembership> Fail(std::string* error, const std::string& why) {
  if (error != nullptr) {
    *error = why;
  }
  return std::nullopt;
}

}  // namespace

std::string SerializeMembership(const FleetMembership& m) {
  std::string out(kHeader);
  out += "\ngeneration " + std::to_string(m.generation) + "\n";
  if (m.backup.has_value()) {
    out += "backup " + m.backup->host + " " +
           std::to_string(m.backup->port) + "\n";
  }
  for (const MemberNode& n : m.nodes) {
    out += "node " + std::to_string(n.slot) + " ";
    out += n.dead() ? "dead" : n.host + " " + std::to_string(n.port);
    out += "\n";
  }
  return out;
}

std::optional<FleetMembership> ParseMembership(const std::string& text,
                                               std::string* error) {
  FleetMembership m;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      saw_header = saw_header || line == kHeader;
      continue;
    }
    std::istringstream tokens(line);
    std::string kind;
    tokens >> kind;
    if (kind == "generation") {
      std::string gen;
      if (!(tokens >> gen) || !ParseU64(gen, &m.generation)) {
        return Fail(error, "line " + std::to_string(line_no) +
                               ": bad generation");
      }
    } else if (kind == "backup") {
      MemberNode backup;
      std::string port;
      if (!(tokens >> backup.host >> port) || !ParsePort(port, &backup.port)) {
        return Fail(error,
                    "line " + std::to_string(line_no) + ": bad backup");
      }
      m.backup = backup;
    } else if (kind == "node") {
      MemberNode node;
      std::string slot;
      std::string host;
      if (!(tokens >> slot >> host) || !ParseU64(slot, &node.slot)) {
        return Fail(error, "line " + std::to_string(line_no) + ": bad node");
      }
      if (host != "dead") {
        std::string port;
        if (!(tokens >> port) || !ParsePort(port, &node.port)) {
          return Fail(error,
                      "line " + std::to_string(line_no) + ": bad node port");
        }
        node.host = host;
      }
      m.nodes.push_back(node);
    } else {
      return Fail(error, "line " + std::to_string(line_no) +
                             ": unknown directive '" + kind + "'");
    }
    std::string extra;
    if (tokens >> extra) {
      return Fail(error,
                  "line " + std::to_string(line_no) + ": trailing junk");
    }
  }
  if (!saw_header) {
    return Fail(error, "missing header line '" + std::string(kHeader) + "'");
  }
  std::sort(m.nodes.begin(), m.nodes.end(),
            [](const MemberNode& a, const MemberNode& b) {
              return a.slot < b.slot;
            });
  for (size_t i = 1; i < m.nodes.size(); ++i) {
    if (m.nodes[i].slot == m.nodes[i - 1].slot) {
      return Fail(error,
                  "duplicate slot " + std::to_string(m.nodes[i].slot));
    }
  }
  return m;
}

std::optional<FleetMembership> LoadMembership(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return Fail(error, "cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseMembership(text.str(), error);
}

bool SaveMembership(const std::string& path, const FleetMembership& m) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << SerializeMembership(m);
    if (!out.flush()) {
      ::unlink(tmp.c_str());
      return false;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace spotcache::proxy
