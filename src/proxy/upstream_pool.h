// UpstreamPool: the proxy's server-side fan-out to the cache fleet.
//
// Keys are homed on consistent-hash slots exactly like the in-process
// FleetRouter (same ring construction, same HashString, weight 1.0 per
// slot), and each slot is fronted by a src/resilience CircuitBreaker. The
// absorption contract carries over unchanged: no transport failure ever
// surfaces to the proxy's client — gets degrade primary → backup → miss,
// writes degrade primary → backup → unavailable, and a failed upstream
// records a breaker failure plus one capped-backoff reconnect attempt.
//
// What is new over FleetRouter is pipelined upstream multiplexing: MultiGet
// scatters a request's keys across their owning upstreams and streams each
// upstream's fetches through a bounded in-flight window (`window` commands
// on the wire before the first reply is awaited), reassembling results in
// request-key order. Cross-node multigets therefore cost max-over-nodes
// round trips, not sum-over-keys.
//
// Membership is applied as whole documents (see membership.h): endpoints
// that did not change keep their connection and breaker history; changed or
// dead slots reset. The pool is loop-thread-only — no internal locking, by
// design (it lives inside ProxyCore, which NetServer drives from its single
// event loop).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/client.h"
#include "src/obs/trace.h"
#include "src/proxy/membership.h"
#include "src/resilience/circuit_breaker.h"
#include "src/routing/consistent_hash.h"
#include "src/util/time.h"

namespace spotcache::proxy {

struct UpstreamPoolConfig {
  CircuitBreakerConfig breaker{
      .failure_threshold = 2,
      .open_base = Duration::Millis(100),
      .open_backoff = 2.0,
      .open_max = Duration::Seconds(2),
      .half_open_successes = 1,
      .probe_jitter = 0.25,
  };
  net::ReconnectPolicy reconnect{.max_attempts = 1,
                                 .initial_backoff_ms = 5,
                                 .max_backoff_ms = 50,
                                 .backoff_factor = 2.0};
  /// Per-operation socket timeout (connect + send + recv deadlines).
  int op_timeout_ms = 250;
  /// Per-upstream in-flight command window for pipelined multigets.
  int window = 32;
  uint64_t seed = 0;
};

/// Which rung of the degradation ladder served one key (or one write).
enum class ServedRung : uint8_t {
  kPrimary,  // the owning slot answered
  kBackup,   // primary unreachable / breaker open; the backup answered
  kNone,     // nothing reachable: a get becomes a miss, a write is lost
};

/// Per-key result of a MultiGet, in request-key order.
struct KeyFetch {
  bool found = false;
  ServedRung rung = ServedRung::kNone;
  uint32_t flags = 0;
  uint64_t cas = 0;
  std::string data;
};

/// Result of forwarding a single status-line command (storage / delete /
/// touch): the upstream's reply line (CRLF stripped), or nullopt when no
/// rung was reachable.
struct ForwardResult {
  std::optional<std::string> line;
  ServedRung rung = ServedRung::kNone;
};

struct UpstreamPoolStats {
  uint64_t absorbed_failures = 0;  // transport failures hidden by degradation
  uint64_t reconnects = 0;
  uint64_t breaker_skips = 0;  // upstream legs skipped while a breaker is open
  uint64_t backup_served = 0;  // keys/writes that landed on the backup rung
  uint64_t unreachable = 0;    // keys/writes no rung could serve
};

class UpstreamPool {
 public:
  explicit UpstreamPool(const UpstreamPoolConfig& config,
                        EventTracer* tracer = nullptr);

  /// Adds slot `slot` to the ring or re-points it. A changed endpoint resets
  /// the slot's connection and breaker; an identical endpoint is a no-op.
  void SetNode(uint64_t slot, const std::string& host, uint16_t port);
  /// The off-ring backup (hot copies; read/write fallback).
  void SetBackup(const std::string& host, uint16_t port);
  /// Trips the slot's breaker open without waiting for traffic to find the
  /// corpse (the membership file said `dead`).
  void MarkDead(uint64_t slot);
  /// Removes the slot from the ring entirely.
  void RemoveNode(uint64_t slot);

  /// Applies a whole membership document: unchanged endpoints keep their
  /// breaker and connection, changed ones reset, absent slots are removed,
  /// `dead` slots are marked. Records the document's generation.
  void ApplyMembership(const FleetMembership& m);

  /// Fetches `keys` (with cas values when `with_cas`), filling `out` in
  /// request-key order. Never fails: every key resolves to found / miss /
  /// unreachable-miss via the degradation ladder.
  void MultiGet(const std::vector<std::string_view>& keys, bool with_cas,
                std::vector<KeyFetch>* out);

  /// Forwards one command whose reply is a single status line (set / add /
  /// replace / delete / touch). `wire` is the full request bytes including
  /// payload and CRLFs; `key` homes it on the ring.
  ForwardResult ForwardLineCommand(std::string_view key,
                                   const std::string& wire);

  /// Broadcasts flush_all (with optional delay) to every node + the backup.
  /// Returns how many upstreams acknowledged with OK.
  size_t BroadcastFlush(int64_t delay_s);

  const UpstreamPoolStats& stats() const { return stats_; }
  uint64_t generation() const { return generation_; }
  size_t node_count() const { return nodes_.size(); }
  bool has_backup() const { return backup_.has_value(); }
  /// The slot owning `key` (for tests).
  std::optional<uint64_t> OwnerOf(std::string_view key) const;

 private:
  struct Node {
    std::string host;
    uint16_t port = 0;
    net::NetClient client;
    std::unique_ptr<CircuitBreaker> breaker;
    bool connected = false;
    bool dead = false;  // membership said so; breaker held open via MarkDead
  };

  /// One key of a multiget while it is in flight against a specific node.
  struct PendingKey {
    size_t index = 0;  // position in the request key list
    std::string_view key;
  };

  SimTime Now() const;
  bool EnsureConnected(Node& node);
  /// Breaker failure + absorbed count + one reconnect attempt.
  bool HandleTransportFailure(Node& node, uint64_t slot);
  void TraceBreaker(uint64_t slot, BreakerState before, BreakerState after);
  /// Pipelined fetch of `keys` from one node with the bounded window.
  /// Returns false on transport failure; *resolved is how many keys got a
  /// definitive answer (their KeyFetch entries in `out` are final).
  bool FetchFromNode(Node& node, uint64_t slot,
                     const std::vector<PendingKey>& keys, bool with_cas,
                     ServedRung rung, size_t* resolved,
                     std::vector<KeyFetch>* out);
  /// Reads one single-key get reply (VALUE block + END, or bare END).
  /// Returns false on transport failure or protocol violation.
  bool ReadOneGetReply(Node& node, KeyFetch* fetch);
  /// Sends `wire` and reads the status line from one node. nullopt on
  /// transport failure.
  std::optional<std::string> RoundTripLine(Node& node, const std::string& wire);

  UpstreamPoolConfig config_;
  EventTracer* tracer_;

  ConsistentHashRing ring_;
  std::map<uint64_t, Node> nodes_;
  std::optional<Node> backup_;
  UpstreamPoolStats stats_;
  uint64_t generation_ = 0;
  /// Wall anchor for the breakers' SimTime clock (proxy-relative micros).
  int64_t epoch_us_ = 0;
};

}  // namespace spotcache::proxy
