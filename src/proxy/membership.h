// Fleet membership documents: the file-based control plane between the
// fleet controller and the proxy tier.
//
// The controller (or any operator) writes a small text file describing the
// backing fleet — one consistent-hash slot per primary, plus the off-ring
// backup — and signals the proxy (SIGHUP) to re-read it. The format is
// line-oriented and diff-friendly:
//
//   # spotcache fleet membership v1
//   generation 7
//   backup 127.0.0.1 18000
//   node 0 127.0.0.1 18001
//   node 1 dead
//   node 2 127.0.0.1 18003
//
// `generation` is a monotonically increasing edition number (the proxy
// exposes the last applied generation in its stats, which is how drills
// verify a reload landed). `node <slot> dead` keeps the slot on the ring but
// marks its endpoint unusable — the controller publishes this between a kill
// and the replacement becoming ready, so the proxy trips the slot's breaker
// immediately instead of discovering the corpse one timeout at a time.
//
// Save() writes atomically (temp file + rename) so a reader racing a writer
// always sees a complete document.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace spotcache::proxy {

struct MemberNode {
  uint64_t slot = 0;
  /// Empty host means the slot is present but dead (no reachable endpoint).
  std::string host;
  uint16_t port = 0;

  bool dead() const { return host.empty(); }
};

struct FleetMembership {
  uint64_t generation = 0;
  std::optional<MemberNode> backup;  // slot field unused for the backup
  std::vector<MemberNode> nodes;    // sorted by slot after Parse()
};

/// Renders the membership document (trailing newline included).
std::string SerializeMembership(const FleetMembership& m);

/// Parses a membership document. Returns nullopt (with a human-readable
/// reason in *error, if given) on any malformed line — a partially applied
/// fleet view is worse than keeping the previous one.
std::optional<FleetMembership> ParseMembership(const std::string& text,
                                               std::string* error = nullptr);

/// Reads + parses `path`. nullopt when unreadable or malformed.
std::optional<FleetMembership> LoadMembership(const std::string& path,
                                              std::string* error = nullptr);

/// Atomically writes `m` to `path` (temp file in the same directory +
/// rename). Returns false on any I/O failure.
bool SaveMembership(const std::string& path, const FleetMembership& m);

}  // namespace spotcache::proxy
