#include "src/proxy/upstream_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "src/net/protocol.h"
#include "src/routing/hash.h"

namespace spotcache::proxy {

namespace {

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The complete reply vocabulary for status-line commands (storage /
/// delete / touch / flush_all). Error lines carry a free-form tail.
bool ValidStatusLine(std::string_view line) {
  return line == "STORED" || line == "NOT_STORED" || line == "EXISTS" ||
         line == "NOT_FOUND" || line == "DELETED" || line == "TOUCHED" ||
         line == "OK" || line == "ERROR" ||
         line.rfind("CLIENT_ERROR", 0) == 0 ||
         line.rfind("SERVER_ERROR", 0) == 0;
}

/// Splits `line` into space-separated tokens (no empty tokens).
void SplitTokens(std::string_view line, std::vector<std::string_view>* out) {
  out->clear();
  size_t at = 0;
  while (at < line.size()) {
    const size_t space = line.find(' ', at);
    const size_t end = space == std::string_view::npos ? line.size() : space;
    if (end > at) {
      out->push_back(line.substr(at, end - at));
    }
    at = end + 1;
  }
}

bool ParseU64Token(std::string_view token, uint64_t* out) {
  if (token.empty() || token.size() > 20) {
    return false;
  }
  uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

}  // namespace

UpstreamPool::UpstreamPool(const UpstreamPoolConfig& config,
                           EventTracer* tracer)
    : config_(config), tracer_(tracer), epoch_us_(WallUs()) {}

SimTime UpstreamPool::Now() const {
  return SimTime::FromMicros(WallUs() - epoch_us_);
}

void UpstreamPool::SetNode(uint64_t slot, const std::string& host,
                           uint16_t port) {
  Node& node = nodes_[slot];
  if (node.breaker != nullptr && !node.dead && node.host == host &&
      node.port == port) {
    return;  // unchanged endpoint: keep the connection and breaker history
  }
  node.host = host;
  node.port = port;
  node.client.Close();
  node.connected = false;
  node.dead = false;
  // A replacement is a fresh process: it earns a fresh breaker.
  node.breaker =
      std::make_unique<CircuitBreaker>(config_.breaker, config_.seed, slot);
  ring_.SetNode(slot, 1.0);
}

void UpstreamPool::SetBackup(const std::string& host, uint16_t port) {
  if (backup_.has_value() && backup_->host == host && backup_->port == port) {
    return;
  }
  backup_.emplace();
  backup_->host = host;
  backup_->port = port;
  // Slot id ~0 keeps the backup's breaker jitter decorrelated from primaries.
  backup_->breaker =
      std::make_unique<CircuitBreaker>(config_.breaker, config_.seed, ~0ULL);
}

void UpstreamPool::MarkDead(uint64_t slot) {
  auto it = nodes_.find(slot);
  if (it == nodes_.end()) {
    // An unknown-but-dead slot still owns ring range; keys homed there must
    // degrade to the backup instead of rehashing onto live primaries.
    Node& node = nodes_[slot];
    node.breaker =
        std::make_unique<CircuitBreaker>(config_.breaker, config_.seed, slot);
    node.dead = true;
    ring_.SetNode(slot, 1.0);
    return;
  }
  Node& node = it->second;
  node.client.Close();
  node.connected = false;
  node.dead = true;
  const SimTime now = Now();
  const BreakerState before = node.breaker->state(now);
  for (int i = 0; i < config_.breaker.failure_threshold; ++i) {
    node.breaker->RecordFailure(now);
  }
  TraceBreaker(slot, before, node.breaker->state(now));
}

void UpstreamPool::RemoveNode(uint64_t slot) {
  auto it = nodes_.find(slot);
  if (it == nodes_.end()) {
    return;
  }
  nodes_.erase(it);
  ring_.RemoveNode(slot);
}

void UpstreamPool::ApplyMembership(const FleetMembership& m) {
  if (m.backup.has_value()) {
    SetBackup(m.backup->host, m.backup->port);
  } else {
    backup_.reset();
  }
  // Drop slots the document no longer names.
  std::vector<uint64_t> stale;
  for (const auto& [slot, node] : nodes_) {
    bool named = false;
    for (const MemberNode& n : m.nodes) {
      if (n.slot == slot) {
        named = true;
        break;
      }
    }
    if (!named) {
      stale.push_back(slot);
    }
  }
  for (const uint64_t slot : stale) {
    RemoveNode(slot);
  }
  for (const MemberNode& n : m.nodes) {
    if (n.dead()) {
      MarkDead(n.slot);
    } else {
      SetNode(n.slot, n.host, n.port);
    }
  }
  generation_ = m.generation;
}

std::optional<uint64_t> UpstreamPool::OwnerOf(std::string_view key) const {
  return ring_.NodeFor(HashString(key));
}

bool UpstreamPool::EnsureConnected(Node& node) {
  if (node.connected && node.client.connected()) {
    return true;
  }
  node.connected =
      node.client.Connect(node.host, node.port, config_.op_timeout_ms);
  return node.connected;
}

bool UpstreamPool::HandleTransportFailure(Node& node, uint64_t slot) {
  const SimTime now = Now();
  const BreakerState before = node.breaker->state(now);
  node.breaker->RecordFailure(now);
  ++stats_.absorbed_failures;
  node.connected = false;
  if (node.client.Reconnect(config_.reconnect)) {
    ++stats_.reconnects;
    node.connected = true;
  }
  TraceBreaker(slot, before, node.breaker->state(Now()));
  return node.connected;
}

void UpstreamPool::TraceBreaker(uint64_t slot, BreakerState before,
                                BreakerState after) {
  if (tracer_ != nullptr && before != after) {
    tracer_->BreakerTransition(Now(), slot, ToString(before), ToString(after));
  }
}

bool UpstreamPool::ReadOneGetReply(Node& node, KeyFetch* fetch) {
  std::vector<std::string_view> tokens;
  for (;;) {
    const auto line = node.client.ReadLine();
    if (!line.has_value()) {
      return false;
    }
    if (*line == "END") {
      return true;
    }
    if (line->rfind("VALUE ", 0) != 0) {
      return false;  // upstream protocol violation: treated as a dead socket
    }
    SplitTokens(*line, &tokens);
    uint64_t flags = 0;
    uint64_t bytes = 0;
    uint64_t cas = 0;
    if (tokens.size() < 4 || tokens.size() > 5 ||
        !ParseU64Token(tokens[2], &flags) ||
        !ParseU64Token(tokens[3], &bytes) || bytes > net::kMaxValueBytes ||
        (tokens.size() == 5 && !ParseU64Token(tokens[4], &cas))) {
      return false;
    }
    auto data = node.client.ReadBytes(bytes + 2);
    if (!data.has_value() ||
        data->compare(bytes, 2, "\r\n") != 0) {
      return false;
    }
    data->resize(bytes);
    fetch->found = true;
    fetch->flags = static_cast<uint32_t>(flags);
    fetch->cas = cas;
    fetch->data = std::move(*data);
  }
}

bool UpstreamPool::FetchFromNode(Node& node, uint64_t slot,
                                 const std::vector<PendingKey>& keys,
                                 bool with_cas, ServedRung rung,
                                 size_t* resolved,
                                 std::vector<KeyFetch>* out) {
  *resolved = 0;
  if (!EnsureConnected(node)) {
    return false;
  }
  const size_t window =
      config_.window > 0 ? static_cast<size_t>(config_.window) : 1;
  const char* verb = with_cas ? "gets " : "get ";
  size_t sent = 0;
  size_t read = 0;
  std::string burst;
  while (read < keys.size()) {
    if (sent < keys.size() && sent - read < window) {
      // Top the window up in one send: the upstream sees a pipelined burst,
      // so a cross-node multiget costs one round trip per window, not per
      // key.
      burst.clear();
      while (sent < keys.size() && sent - read < window) {
        burst += verb;
        burst.append(keys[sent].key);
        burst += "\r\n";
        ++sent;
      }
      if (!node.client.SendRaw(burst)) {
        *resolved = read;
        return false;
      }
    }
    KeyFetch fetch;
    if (!ReadOneGetReply(node, &fetch)) {
      *resolved = read;
      return false;
    }
    fetch.rung = rung;
    (*out)[keys[read].index] = std::move(fetch);
    ++read;
  }
  *resolved = read;
  const SimTime now = Now();
  const BreakerState before = node.breaker->state(now);
  node.breaker->RecordSuccess(now);
  TraceBreaker(slot, before, node.breaker->state(now));
  return true;
}

void UpstreamPool::MultiGet(const std::vector<std::string_view>& keys,
                            bool with_cas, std::vector<KeyFetch>* out) {
  out->clear();
  out->resize(keys.size());

  // Group keys by owning slot, preserving request order within each group.
  std::map<uint64_t, std::vector<PendingKey>> by_slot;
  std::vector<PendingKey> backup_keys;
  for (size_t i = 0; i < keys.size(); ++i) {
    const auto owner = ring_.NodeFor(HashString(keys[i]));
    if (owner.has_value()) {
      by_slot[*owner].push_back({i, keys[i]});
    } else {
      backup_keys.push_back({i, keys[i]});
    }
  }

  // Primary legs, breaker-gated; unresolved keys fall to the backup list.
  for (auto& [slot, pending] : by_slot) {
    auto it = nodes_.find(slot);
    Node* node = it != nodes_.end() ? &it->second : nullptr;
    if (node == nullptr || node->dead || !node->breaker->Allow(Now())) {
      if (node != nullptr) {
        ++stats_.breaker_skips;
      }
      backup_keys.insert(backup_keys.end(), pending.begin(), pending.end());
      continue;
    }
    size_t resolved = 0;
    if (!FetchFromNode(*node, slot, pending, with_cas, ServedRung::kPrimary,
                       &resolved, out)) {
      HandleTransportFailure(*node, slot);
      backup_keys.insert(backup_keys.end(), pending.begin() + resolved,
                         pending.end());
    }
  }

  // Backup leg: hot copies only; a clean backup miss is final.
  if (!backup_keys.empty()) {
    std::sort(backup_keys.begin(), backup_keys.end(),
              [](const PendingKey& a, const PendingKey& b) {
                return a.index < b.index;
              });
    size_t resolved = 0;
    bool served = false;
    if (backup_.has_value() && backup_->breaker->Allow(Now())) {
      served = FetchFromNode(*backup_, ~0ULL, backup_keys, with_cas,
                             ServedRung::kBackup, &resolved, out);
      if (!served) {
        HandleTransportFailure(*backup_, ~0ULL);
      }
    }
    stats_.backup_served += resolved;
    stats_.unreachable += backup_keys.size() - resolved;
    // Unresolved keys stay at their zero-initialized state: a miss on the
    // kNone rung — absorbed, never an error.
    if (tracer_ != nullptr && resolved < backup_keys.size()) {
      tracer_->Shed(Now(), "proxy_pool",
                    static_cast<double>(backup_keys.size() - resolved));
    }
  }
}

std::optional<std::string> UpstreamPool::RoundTripLine(
    Node& node, const std::string& wire) {
  if (!EnsureConnected(node)) {
    return std::nullopt;
  }
  if (!node.client.SendRaw(wire)) {
    return std::nullopt;
  }
  auto line = node.client.ReadLine();
  if (line.has_value() && !ValidStatusLine(*line)) {
    // An upstream answering a status-line command with anything else (a
    // torn VALUE block, half a reply before a kill) has lost protocol sync;
    // treat the socket as dead rather than relaying garbage to the client.
    return std::nullopt;
  }
  return line;
}

ForwardResult UpstreamPool::ForwardLineCommand(std::string_view key,
                                               const std::string& wire) {
  ForwardResult result;
  const auto owner = ring_.NodeFor(HashString(key));
  if (owner.has_value()) {
    auto it = nodes_.find(*owner);
    if (it != nodes_.end()) {
      Node& node = it->second;
      if (!node.dead && node.breaker->Allow(Now())) {
        auto line = RoundTripLine(node, wire);
        if (line.has_value()) {
          const SimTime now = Now();
          const BreakerState before = node.breaker->state(now);
          node.breaker->RecordSuccess(now);
          TraceBreaker(*owner, before, node.breaker->state(now));
          result.line = std::move(line);
          result.rung = ServedRung::kPrimary;
          return result;
        }
        HandleTransportFailure(node, *owner);
      } else {
        ++stats_.breaker_skips;
      }
    }
  }

  // Degraded leg: land the command on the backup so warm-up (and backup
  // fall-through reads) see fresh data.
  if (backup_.has_value() && backup_->breaker->Allow(Now())) {
    auto line = RoundTripLine(*backup_, wire);
    if (line.has_value()) {
      backup_->breaker->RecordSuccess(Now());
      ++stats_.backup_served;
      result.line = std::move(line);
      result.rung = ServedRung::kBackup;
      return result;
    }
    HandleTransportFailure(*backup_, ~0ULL);
  }

  ++stats_.unreachable;
  if (tracer_ != nullptr) {
    tracer_->Shed(Now(), "proxy_pool", 1.0);
  }
  return result;
}

size_t UpstreamPool::BroadcastFlush(int64_t delay_s) {
  std::string wire = "flush_all";
  if (delay_s > 0) {
    wire += " " + std::to_string(delay_s);
  }
  wire += "\r\n";
  size_t acked = 0;
  for (auto& [slot, node] : nodes_) {
    if (node.dead || !node.breaker->Allow(Now())) {
      continue;
    }
    const auto line = RoundTripLine(node, wire);
    if (line.has_value() && *line == "OK") {
      node.breaker->RecordSuccess(Now());
      ++acked;
    } else if (!line.has_value()) {
      HandleTransportFailure(node, slot);
    }
  }
  if (backup_.has_value() && backup_->breaker->Allow(Now())) {
    const auto line = RoundTripLine(*backup_, wire);
    if (line.has_value() && *line == "OK") {
      backup_->breaker->RecordSuccess(Now());
      ++acked;
    } else if (!line.has_value()) {
      HandleTransportFailure(*backup_, ~0ULL);
    }
  }
  return acked;
}

}  // namespace spotcache::proxy
