#include "src/proxy/proxy_core.h"

#include <inttypes.h>

namespace spotcache::proxy {

namespace {

TelemetryOp OpFor(net::Verb verb) {
  switch (verb) {
    case net::Verb::kGet:
    case net::Verb::kGets:
      return TelemetryOp::kGet;
    case net::Verb::kSet:
    case net::Verb::kAdd:
    case net::Verb::kReplace:
      return TelemetryOp::kSet;
    case net::Verb::kDelete:
      return TelemetryOp::kDelete;
    case net::Verb::kTouch:
      return TelemetryOp::kTouch;
    default:
      return TelemetryOp::kOther;
  }
}

/// Worst-first merge for multi-key retrievals, matching the server's
/// convention (error > shed > backup > miss > hit).
RequestOutcome Worse(RequestOutcome a, RequestOutcome b) {
  const auto rank = [](RequestOutcome o) {
    switch (o) {
      case RequestOutcome::kError:
        return 4;
      case RequestOutcome::kShed:
        return 3;
      case RequestOutcome::kBackup:
        return 2;
      case RequestOutcome::kMiss:
        return 1;
      default:
        return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace

ProxyCore::ProxyCore(const ProxyCoreConfig& config, Obs* obs,
                     EventTracer* tracer)
    : config_(config), pool_(config.upstreams, tracer) {
  if (obs != nullptr) {
    obs_requests_ = obs->registry.GetCounter("proxy/requests");
    obs_get_hits_ = obs->registry.GetCounter("proxy/get_hits");
    obs_backup_hits_ = obs->registry.GetCounter("proxy/backup_hits");
    obs_misses_ = obs->registry.GetCounter("proxy/get_misses");
    obs_sheds_ = obs->registry.GetCounter("proxy/sheds");
    obs_sets_ = obs->registry.GetCounter("proxy/sets");
    obs_absorbed_ = obs->registry.GetCounter("proxy/absorbed_failures");
    obs_reconnects_ = obs->registry.GetCounter("proxy/reconnects");
    obs_reloads_ = obs->registry.GetCounter("proxy/reloads");
    obs_protocol_errors_ = obs->registry.GetCounter("proxy/protocol_errors");
  }
}

bool ProxyCore::ReloadMembership(const std::string& path) {
  std::string error;
  const auto m = LoadMembership(path, &error);
  if (!m.has_value()) {
    ++stats_.reload_failures;
    return false;
  }
  pool_.ApplyMembership(*m);
  ++stats_.reloads;
  if (obs_reloads_ != nullptr) {
    obs_reloads_->Increment();
  }
  return true;
}

void ProxyCore::HandleRetrieve(const net::TextRequest& req,
                               net::ResponseAssembler* out,
                               RequestOutcome* outcome,
                               uint32_t* value_bytes) {
  ++stats_.gets;
  stats_.get_keys += req.keys.size();
  const bool with_cas = req.verb == net::Verb::kGets;
  keys_.assign(req.keys.begin(), req.keys.end());
  pool_.MultiGet(keys_, with_cas, &fetches_);

  *outcome = RequestOutcome::kHit;
  for (size_t i = 0; i < fetches_.size(); ++i) {
    const KeyFetch& fetch = fetches_[i];
    if (fetch.found) {
      // Byte-identical to ServerCore's VALUE block formatting.
      const std::string_view key = keys_[i];
      if (with_cas) {
        out->Appendf("VALUE %.*s %u %zu %" PRIu64 "\r\n",
                     static_cast<int>(key.size()), key.data(), fetch.flags,
                     fetch.data.size(), fetch.cas);
      } else {
        out->Appendf("VALUE %.*s %u %zu\r\n", static_cast<int>(key.size()),
                     key.data(), fetch.flags, fetch.data.size());
      }
      out->Append(fetch.data);
      out->Append("\r\n");
      *value_bytes += static_cast<uint32_t>(fetch.data.size());
      if (fetch.rung == ServedRung::kBackup) {
        ++stats_.backup_hits;
        if (obs_backup_hits_ != nullptr) {
          obs_backup_hits_->Increment();
        }
        *outcome = Worse(*outcome, RequestOutcome::kBackup);
      } else {
        ++stats_.get_hits;
        if (obs_get_hits_ != nullptr) {
          obs_get_hits_->Increment();
        }
      }
    } else if (fetch.rung == ServedRung::kNone) {
      // Nothing reachable: absorbed as a shed, reported as a plain miss.
      ++stats_.sheds;
      if (obs_sheds_ != nullptr) {
        obs_sheds_->Increment();
      }
      *outcome = Worse(*outcome, RequestOutcome::kShed);
    } else {
      ++stats_.misses;
      if (obs_misses_ != nullptr) {
        obs_misses_->Increment();
      }
      *outcome = Worse(*outcome, RequestOutcome::kMiss);
    }
  }
  out->Append("END\r\n");
}

std::string ProxyCore::RebuildWire(const net::TextRequest& req) const {
  std::string wire;
  switch (req.verb) {
    case net::Verb::kSet:
    case net::Verb::kAdd:
    case net::Verb::kReplace:
      wire.append(ToString(req.verb));
      wire += ' ';
      wire.append(req.keys[0]);
      wire += ' ' + std::to_string(req.flags) + ' ' +
              std::to_string(req.exptime) + ' ' +
              std::to_string(req.data.size()) + "\r\n";
      wire.append(req.data);
      wire += "\r\n";
      break;
    case net::Verb::kDelete:
      wire = "delete ";
      wire.append(req.keys[0]);
      wire += "\r\n";
      break;
    case net::Verb::kTouch:
      wire = "touch ";
      wire.append(req.keys[0]);
      wire += ' ' + std::to_string(req.exptime) + "\r\n";
      break;
    default:
      break;
  }
  return wire;
}

void ProxyCore::HandleForwarded(const net::TextRequest& req,
                                net::ResponseAssembler* out,
                                RequestOutcome* outcome) {
  const bool storage = req.verb == net::Verb::kSet ||
                       req.verb == net::Verb::kAdd ||
                       req.verb == net::Verb::kReplace;
  if (storage) {
    ++stats_.sets;
    if (obs_sets_ != nullptr) {
      obs_sets_->Increment();
    }
  } else if (req.verb == net::Verb::kDelete) {
    ++stats_.deletes;
  } else {
    ++stats_.touches;
  }

  // Forward WITHOUT noreply and await the status line even when the client
  // asked for silence: the upstream round trip keeps cas numbering and
  // command ordering in lockstep with direct serving.
  const ForwardResult result = pool_.ForwardLineCommand(req.keys[0],
                                                        RebuildWire(req));
  if (result.line.has_value()) {
    if (storage) {
      if (result.rung == ServedRung::kBackup) {
        ++stats_.set_backup;
      } else {
        ++stats_.set_primary;
      }
      *outcome = *result.line == "STORED" ? RequestOutcome::kStored
                                          : RequestOutcome::kNotStored;
      if (result.rung == ServedRung::kBackup) {
        *outcome = RequestOutcome::kBackup;
      }
    } else {
      *outcome = (*result.line == "DELETED" || *result.line == "TOUCHED")
                     ? RequestOutcome::kHit
                     : RequestOutcome::kMiss;
    }
    if (!req.noreply) {
      out->Append(*result.line);
      out->Append("\r\n");
    }
    return;
  }

  // No rung reachable. Never lie about a write landing: surface a
  // SERVER_ERROR (suppressed under noreply, like every status reply).
  if (storage) {
    ++stats_.set_failures;
  }
  *outcome = RequestOutcome::kShed;
  if (obs_sheds_ != nullptr) {
    obs_sheds_->Increment();
  }
  if (!req.noreply) {
    out->Append("SERVER_ERROR proxy upstream unavailable\r\n");
  }
}

void ProxyCore::AppendStats(net::ResponseAssembler* out) {
  // The proxy's own deterministic stats block: pure functions of the
  // request history (no clocks, no uptime), so chunking-invariance holds
  // through the fuzz harness.
  const UpstreamPoolStats& ps = pool_.stats();
  out->Appendf("STAT version %s\r\n", config_.version.c_str());
  out->Appendf("STAT proxy_gets %" PRIu64 "\r\n", stats_.gets);
  out->Appendf("STAT proxy_get_keys %" PRIu64 "\r\n", stats_.get_keys);
  out->Appendf("STAT proxy_get_hits %" PRIu64 "\r\n", stats_.get_hits);
  out->Appendf("STAT proxy_backup_hits %" PRIu64 "\r\n", stats_.backup_hits);
  out->Appendf("STAT proxy_get_misses %" PRIu64 "\r\n", stats_.misses);
  out->Appendf("STAT proxy_sheds %" PRIu64 "\r\n", stats_.sheds);
  out->Appendf("STAT proxy_sets %" PRIu64 "\r\n", stats_.sets);
  out->Appendf("STAT proxy_set_primary %" PRIu64 "\r\n", stats_.set_primary);
  out->Appendf("STAT proxy_set_backup %" PRIu64 "\r\n", stats_.set_backup);
  out->Appendf("STAT proxy_set_failures %" PRIu64 "\r\n",
               stats_.set_failures);
  out->Appendf("STAT proxy_deletes %" PRIu64 "\r\n", stats_.deletes);
  out->Appendf("STAT proxy_touches %" PRIu64 "\r\n", stats_.touches);
  out->Appendf("STAT proxy_flushes %" PRIu64 "\r\n", stats_.flushes);
  out->Appendf("STAT proxy_absorbed_failures %" PRIu64 "\r\n",
               ps.absorbed_failures);
  out->Appendf("STAT proxy_reconnects %" PRIu64 "\r\n", ps.reconnects);
  out->Appendf("STAT proxy_breaker_skips %" PRIu64 "\r\n", ps.breaker_skips);
  out->Appendf("STAT proxy_backup_served %" PRIu64 "\r\n", ps.backup_served);
  out->Appendf("STAT proxy_unreachable %" PRIu64 "\r\n", ps.unreachable);
  out->Appendf("STAT proxy_nodes %zu\r\n", pool_.node_count());
  out->Appendf("STAT proxy_generation %" PRIu64 "\r\n", pool_.generation());
  out->Appendf("STAT proxy_reloads %" PRIu64 "\r\n", stats_.reloads);
  out->Appendf("STAT proxy_protocol_errors %" PRIu64 "\r\n",
               stats_.protocol_errors);
  out->Append("END\r\n");
}

bool ProxyCore::Handle(const net::TextRequest& req, int64_t now,
                       net::ResponseAssembler* out) {
  (void)now;  // expiry is the upstreams' business; the proxy holds no items
  ++stats_.requests;
  if (obs_requests_ != nullptr) {
    obs_requests_->Increment();
  }
  if (telemetry_ != nullptr) {
    telemetry_->OnParsed(OpFor(req.verb),
                         static_cast<uint32_t>(req.keys.size()));
  }
  const uint64_t absorbed_before = pool_.stats().absorbed_failures;
  const uint64_t reconnects_before = pool_.stats().reconnects;

  RequestOutcome outcome = RequestOutcome::kOther;
  uint32_t value_bytes = 0;
  bool keep_open = true;
  switch (req.verb) {
    case net::Verb::kGet:
    case net::Verb::kGets:
      HandleRetrieve(req, out, &outcome, &value_bytes);
      break;

    case net::Verb::kSet:
    case net::Verb::kAdd:
    case net::Verb::kReplace:
    case net::Verb::kDelete:
    case net::Verb::kTouch:
      HandleForwarded(req, out, &outcome);
      break;

    case net::Verb::kStats:
      AppendStats(out);
      break;

    case net::Verb::kVersion:
      out->Appendf("VERSION %s\r\n", config_.version.c_str());
      break;

    case net::Verb::kFlushAll:
      ++stats_.flushes;
      pool_.BroadcastFlush(req.delay_s);
      if (!req.noreply) {
        out->Append("OK\r\n");
      }
      break;

    case net::Verb::kQuit:
      keep_open = false;
      break;
  }

  if (obs_absorbed_ != nullptr) {
    obs_absorbed_->Increment(static_cast<int64_t>(
        pool_.stats().absorbed_failures - absorbed_before));
  }
  if (obs_reconnects_ != nullptr) {
    obs_reconnects_->Increment(
        static_cast<int64_t>(pool_.stats().reconnects - reconnects_before));
  }
  if (telemetry_ != nullptr) {
    telemetry_->OnExecuted(outcome, value_bytes);
  }
  return keep_open;
}

void ProxyCore::HandleParseError(net::ParseErrorKind kind,
                                 net::ResponseAssembler* out) {
  ++stats_.protocol_errors;
  if (obs_protocol_errors_ != nullptr) {
    obs_protocol_errors_->Increment();
  }
  out->Append(net::ErrorReply(kind));
}

}  // namespace spotcache::proxy
