#include "src/obs/metrics_registry.h"

#include <algorithm>

namespace spotcache {

std::string MetricsRegistry::FullName(std::string_view name,
                                      MetricLabels labels) {
  std::string full(name);
  if (labels.empty()) {
    return full;
  }
  std::sort(labels.begin(), labels.end());
  full += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      full += ',';
    }
    full += labels[i].first;
    full += '=';
    full += labels[i].second;
  }
  full += '}';
  return full;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     MetricLabels labels) {
  return &counters_[FullName(name, std::move(labels))];
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  return &gauges_[FullName(name, std::move(labels))];
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         MetricLabels labels) {
  return &histograms_[FullName(name, std::move(labels))];
}

void MetricsRegistry::AddSample(std::string_view name, SimTime t, double value,
                                MetricLabels labels) {
  series_[FullName(name, std::move(labels))].points.push_back(
      {t.micros(), value});
}

int64_t MetricsRegistry::CounterValue(std::string_view name,
                                      MetricLabels labels) const {
  const auto it = counters_.find(FullName(name, std::move(labels)));
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::GaugeValue(std::string_view name,
                                   MetricLabels labels) const {
  const auto it = gauges_.find(FullName(name, std::move(labels)));
  return it == gauges_.end() ? 0.0 : it->second.value();
}

}  // namespace spotcache
