#include "src/obs/exporters.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <utility>

#include "src/util/logging.h"

namespace spotcache {

namespace {

// Splits a canonical registry name ("spot/revocations{market=m4.L-c}") into
// its base and label pairs.
void SplitFullName(const std::string& full, std::string* base,
                   MetricLabels* labels) {
  const size_t brace = full.find('{');
  if (brace == std::string::npos) {
    *base = full;
    return;
  }
  *base = full.substr(0, brace);
  size_t pos = brace + 1;
  while (pos < full.size() && full[pos] != '}') {
    const size_t comma = full.find(',', pos);
    const size_t end =
        comma == std::string::npos ? full.size() - 1 : comma;  // '}' or ','
    const std::string pair = full.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      labels->emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    pos = end + 1;
  }
}

std::string SanitizeMetricName(std::string_view base) {
  std::string out;
  out.reserve(base.size());
  for (const char c : base) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':')
               ? c
               : '_';
  }
  return out;
}

std::string PrometheusLabels(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first;
    out += "=\"";
    for (const char c : labels[i].second) {
      // Text-format escaping: backslash, double quote, and newline.
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::string Num(double v) { return EventTracer::JsonNumber(v); }

void AppendLine(std::string* out, const std::string& full,
                std::string_view suffix, const std::string& value,
                const std::pair<std::string, std::string>* extra_label =
                    nullptr) {
  std::string base;
  MetricLabels labels;
  SplitFullName(full, &base, &labels);
  if (extra_label != nullptr) {
    labels.push_back(*extra_label);
  }
  *out += SanitizeMetricName(base);
  *out += suffix;
  *out += PrometheusLabels(labels);
  *out += ' ';
  *out += value;
  *out += '\n';
}

}  // namespace

std::string ToJsonl(const EventTracer& tracer) {
  std::string out;
  for (const TraceEvent& ev : tracer.events()) {
    out += "{\"t_us\":";
    out += EventTracer::JsonNumber(ev.time.micros());
    out += ",\"type\":";
    out += EventTracer::JsonString(ev.type);
    for (const auto& [key, value] : ev.fields) {
      out += ',';
      out += EventTracer::JsonString(key);
      out += ':';
      out += value;
    }
    out += "}\n";
  }
  return out;
}

std::string ToCsvTimeSeries(const MetricsRegistry& registry) {
  std::string out = "t_us,series,value\n";
  for (const auto& [name, series] : registry.series()) {
    for (const auto& point : series.points) {
      out += std::to_string(point.t_us);
      out += ',';
      out += name;
      out += ',';
      out += Num(point.value);
      out += '\n';
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [full, counter] : registry.counters()) {
    AppendLine(&out, full, "", std::to_string(counter.value()));
  }
  for (const auto& [full, gauge] : registry.gauges()) {
    // A NaN/Inf gauge would poison rate() and max() queries downstream;
    // reject the sample at the exposition boundary instead of shipping it.
    if (!std::isfinite(gauge.value())) {
      continue;
    }
    AppendLine(&out, full, "", Num(gauge.value()));
  }
  for (const auto& [full, hist] : registry.histograms()) {
    // Prometheus-convention cumulative buckets over the LogHistogram
    // geometry. Empty buckets are skipped (cumulative counts make them
    // redundant); the +Inf bucket always closes the series at _count.
    const std::vector<uint64_t>& buckets = hist.log_histogram().buckets();
    uint64_t cumulative = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) {
        continue;
      }
      cumulative += buckets[b];
      const std::pair<std::string, std::string> le{
          "le", Num(hist.log_histogram().BucketUpperBound(b))};
      AppendLine(&out, full, "_bucket", std::to_string(cumulative), &le);
    }
    const std::pair<std::string, std::string> le_inf{"le", "+Inf"};
    AppendLine(&out, full, "_bucket",
               std::to_string(static_cast<int64_t>(hist.count())), &le_inf);
    AppendLine(&out, full, "_sum", Num(hist.sum()));
    AppendLine(&out, full, "_count",
               std::to_string(static_cast<int64_t>(hist.count())));
    AppendLine(&out, full, "_mean", Num(hist.mean()));
    AppendLine(&out, full, "_p50", Num(hist.Quantile(0.5)));
    AppendLine(&out, full, "_p95", Num(hist.Quantile(0.95)));
    AppendLine(&out, full, "_p99", Num(hist.Quantile(0.99)));
    AppendLine(&out, full, "_max", Num(hist.max_recorded()));
  }
  return out;
}

bool WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    SPOTCACHE_LOG(kError) << "cannot open " << path << " for writing";
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    SPOTCACHE_LOG(kError) << "short write to " << path;
    return false;
  }
  return true;
}

}  // namespace spotcache
