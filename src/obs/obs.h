// The observability bundle handed to control-loop components.
//
// One Obs instance per run holds the metrics registry and the event tracer;
// components take a nullable `Obs*` (AttachObs) and resolve their counters /
// histograms once at attach time. A null Obs means instrumentation is fully
// disabled — hot paths pay a single pointer null check.

#pragma once

#include <string>

#include "src/obs/exporters.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/scoped_timer.h"
#include "src/obs/trace.h"

namespace spotcache {

/// Exporter selection, embeddable in experiment / CLI configs. Paths are
/// written at the end of a run; empty paths skip the file write (the
/// serialized artifacts are still returned in ExperimentResult).
struct ObsConfig {
  /// Master switch: when false no Obs is created at all.
  bool enabled = false;
  /// Record trace events (the registry is always on when enabled).
  bool trace = true;
  std::string jsonl_path;       // JSONL event stream
  std::string csv_path;         // CSV sim-time series
  std::string prometheus_path;  // Prometheus-style text snapshot
};

struct Obs {
  MetricsRegistry registry;
  EventTracer tracer;
};

}  // namespace spotcache
