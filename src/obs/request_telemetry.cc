#include "src/obs/request_telemetry.h"

#include <chrono>

namespace spotcache {

namespace {

/// Rounds up to a power of two (0 stays 0, for "disabled").
uint32_t PowerOfTwoCeil(uint32_t v) {
  if (v <= 1) {
    return v;
  }
  uint32_t p = 1;
  while (p < v && p < (1u << 30)) {
    p <<= 1;
  }
  return p;
}

}  // namespace

std::string_view ToString(TelemetryOp op) {
  switch (op) {
    case TelemetryOp::kGet: return "get";
    case TelemetryOp::kSet: return "set";
    case TelemetryOp::kDelete: return "delete";
    case TelemetryOp::kTouch: return "touch";
    case TelemetryOp::kOther: return "other";
  }
  return "other";
}

std::string_view ToString(RequestOutcome o) {
  switch (o) {
    case RequestOutcome::kHit: return "hit";
    case RequestOutcome::kMiss: return "miss";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kBackup: return "backup";
    case RequestOutcome::kError: return "error";
    case RequestOutcome::kStored: return "stored";
    case RequestOutcome::kNotStored: return "not_stored";
    case RequestOutcome::kOther: return "other";
  }
  return "other";
}

int64_t RequestTelemetry::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RequestTelemetry::RequestTelemetry(const RequestTelemetryConfig& config,
                                   Obs* obs)
    : config_(config), obs_(obs), sample_state_(config.seed) {
  config_.span_sample_every = PowerOfTwoCeil(config.span_sample_every);
  config_.latency_sample_every = PowerOfTwoCeil(config.latency_sample_every);
  span_mask_ =
      config_.span_sample_every == 0 ? 0 : config_.span_sample_every - 1;
  latency_mask_ = config_.latency_sample_every == 0
                      ? 0
                      : config_.latency_sample_every - 1;
  if (config_.flight_ring_capacity == 0) {
    config_.flight_ring_capacity = 1;
  }
  ring_.resize(config_.flight_ring_capacity);
  if (obs_ != nullptr) {
    spans_counter_ = obs_->registry.GetCounter("net/telemetry/spans");
    slow_counter_ = obs_->registry.GetCounter("net/telemetry/slow_requests");
  }
}

Histogram* RequestTelemetry::HistogramFor(TelemetryOp op,
                                          RequestOutcome outcome) {
  if (obs_ == nullptr) {
    return nullptr;
  }
  const auto o = static_cast<size_t>(op);
  const auto c = static_cast<size_t>(outcome);
  Histogram*& slot = hists_[o][c];
  if (slot == nullptr) {
    slot = obs_->registry.GetHistogram(
        "net/request_latency_s",
        {{"op", std::string(ToString(op))},
         {"outcome", std::string(ToString(outcome))}});
  }
  return slot;
}

void RequestTelemetry::BeginBatch(uint64_t conn_id) {
  batch_t0_us_ = NowMicros();
  conn_id_ = conn_id;
  mode_ = Mode::kNone;
}

void RequestTelemetry::BeginSampledRequest(uint64_t hash) {
  mode_ = Mode::kNone;
  if (config_.span_sample_every != 0 &&
      (hash & span_mask_) == 0) {
    mode_ = Mode::kSpan;
  } else if (config_.latency_sample_every != 0 &&
             (hash & latency_mask_) == 0) {
    mode_ = Mode::kLatency;
  }
  if (mode_ == Mode::kNone) {
    return;
  }
  current_ = SpanRecord{};
  current_.conn_id = conn_id_;
  t_begin_us_ = NowMicros();
  current_.t_start_us = batch_t0_us_ - origin_us_;
  current_.queue_us = t_begin_us_ - batch_t0_us_;
}

void RequestTelemetry::OnParsedSampled(TelemetryOp op, uint32_t key_count) {
  current_.op = op;
  current_.keys = key_count;
  if (mode_ == Mode::kSpan) {
    t_parsed_us_ = NowMicros();
    current_.parse_us = t_parsed_us_ - t_begin_us_;
  }
}

void RequestTelemetry::AddRouteTime(int64_t route_us) {
  current_.route_us += route_us;
}

void RequestTelemetry::OnExecutedSampled(RequestOutcome outcome,
                                         uint32_t value_bytes) {
  const int64_t t_end = NowMicros();
  current_.outcome = outcome;
  current_.value_bytes = value_bytes;
  current_.total_us = t_end - batch_t0_us_;
  if (mode_ == Mode::kSpan) {
    current_.full_span = true;
    current_.store_us =
        t_end - t_parsed_us_ - current_.route_us;
    if (current_.store_us < 0) {
      current_.store_us = 0;
    }
  }

  if (Histogram* h = HistogramFor(current_.op, outcome); h != nullptr) {
    h->Record(static_cast<double>(current_.total_us) * 1e-6);
    ++latencies_recorded_;
  }

  const bool slow = config_.slow_request_us > 0 &&
                    current_.total_us > config_.slow_request_us;
  if (slow) {
    ++slow_requests_;
    current_.slow = true;
    dump_pending_ = true;
    if (slow_counter_ != nullptr) {
      slow_counter_->Increment();
    }
  }
  if (mode_ == Mode::kSpan || slow) {
    // Completed spans wait for the batch's write stamp; a slow
    // latency-sampled record is committed with the stamps it has.
    batch_spans_.push_back(current_);
  }
  mode_ = Mode::kNone;
}

void RequestTelemetry::EndBatch(int64_t write_us) {
  for (SpanRecord& span : batch_spans_) {
    if (span.full_span) {
      span.write_us = write_us;
      span.total_us += write_us;
    }
    CommitRecord(span);
  }
  batch_spans_.clear();
  mode_ = Mode::kNone;
}

void RequestTelemetry::CommitRecord(SpanRecord record) {
  ++spans_recorded_;
  if (spans_counter_ != nullptr) {
    spans_counter_->Increment();
  }
  ring_[ring_next_] = record;
  ring_next_ = (ring_next_ + 1) % ring_.size();
  if (ring_count_ < ring_.size()) {
    ++ring_count_;
  }
  if (obs_ != nullptr && obs_->tracer.enabled()) {
    obs_->tracer.Custom(
        SimTime::FromMicros(record.t_start_us), "request_span",
        {{"conn", EventTracer::JsonNumber(
                      static_cast<int64_t>(record.conn_id))},
         {"op", EventTracer::JsonString(ToString(record.op))},
         {"outcome", EventTracer::JsonString(ToString(record.outcome))},
         {"full_span", record.full_span ? "true" : "false"},
         {"slow", record.slow ? "true" : "false"},
         {"queue_us", EventTracer::JsonNumber(record.queue_us)},
         {"parse_us", EventTracer::JsonNumber(record.parse_us)},
         {"route_us", EventTracer::JsonNumber(record.route_us)},
         {"store_us", EventTracer::JsonNumber(record.store_us)},
         {"write_us", EventTracer::JsonNumber(record.write_us)},
         {"total_us", EventTracer::JsonNumber(record.total_us)},
         {"keys", EventTracer::JsonNumber(static_cast<int64_t>(record.keys))},
         {"bytes", EventTracer::JsonNumber(
                       static_cast<int64_t>(record.value_bytes))}});
  }
}

std::vector<SpanRecord> RequestTelemetry::RingSnapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_count_);
  const size_t start =
      ring_count_ < ring_.size() ? 0 : ring_next_;
  for (size_t i = 0; i < ring_count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string RequestTelemetry::RenderSpanJson(const SpanRecord& span) {
  std::string out = "{\"t_us\":";
  out += EventTracer::JsonNumber(span.t_start_us);
  out += ",\"type\":\"request_span\",\"conn\":";
  out += EventTracer::JsonNumber(static_cast<int64_t>(span.conn_id));
  out += ",\"op\":";
  out += EventTracer::JsonString(ToString(span.op));
  out += ",\"outcome\":";
  out += EventTracer::JsonString(ToString(span.outcome));
  out += ",\"full_span\":";
  out += span.full_span ? "true" : "false";
  out += ",\"slow\":";
  out += span.slow ? "true" : "false";
  out += ",\"queue_us\":";
  out += EventTracer::JsonNumber(span.queue_us);
  out += ",\"parse_us\":";
  out += EventTracer::JsonNumber(span.parse_us);
  out += ",\"route_us\":";
  out += EventTracer::JsonNumber(span.route_us);
  out += ",\"store_us\":";
  out += EventTracer::JsonNumber(span.store_us);
  out += ",\"write_us\":";
  out += EventTracer::JsonNumber(span.write_us);
  out += ",\"total_us\":";
  out += EventTracer::JsonNumber(span.total_us);
  out += ",\"keys\":";
  out += EventTracer::JsonNumber(static_cast<int64_t>(span.keys));
  out += ",\"bytes\":";
  out += EventTracer::JsonNumber(static_cast<int64_t>(span.value_bytes));
  out += "}";
  return out;
}

std::string RequestTelemetry::RenderFlightRecorderJsonl() const {
  std::string out;
  for (const SpanRecord& span : RingSnapshot()) {
    out += RenderSpanJson(span);
    out += '\n';
  }
  return out;
}

}  // namespace spotcache
