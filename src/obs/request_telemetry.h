// Serving-path request telemetry: sampled spans, always-on latency
// histograms, and a slow-request flight recorder.
//
// The design splits cost three ways so the hot path stays inside a ~2%
// overhead budget on bench_net_loopback (gated in CI):
//
//   * Every request pays only a PRNG step + branch (a couple of ns). The
//     sampling decision is a splitmix-style hash of a per-telemetry counter,
//     not `counter % N`, so pipelined batches (which present requests at
//     fixed positions) cannot alias against the sampling lattice.
//   * A latency-sampled request (1/latency_sample_every, default 1/16) pays
//     one extra clock read at completion; its total latency (measured from
//     the batch's recv timestamp, so in-batch queueing is included) lands in
//     an always-on per-(op, outcome) registry histogram. Uniform sampling
//     preserves the shape of the distribution, so the histogram quantiles
//     estimate true server-side quantiles — and they use the same
//     LogHistogram geometry (1 us floor, 5% growth) as the load generator,
//     so server and client p99 are directly comparable.
//   * A span-sampled request (1/span_sample_every, default 1/256) carries
//     monotonic timestamps through parse -> route/ladder -> store ->
//     response-write. Finished spans go to the flight-recorder ring always,
//     and to the EventTracer as `request_span` JSONL events when tracing is
//     enabled.
//
// The flight recorder is a fixed-size ring of recent span records. A request
// whose measured latency exceeds `slow_request_us` is force-recorded into
// the ring (whatever stamps it has) and raises `dump_pending`, which the
// server loop turns into a JSONL dump — the same dump SIGUSR1 triggers.
//
// Thread model: single-threaded, same as the epoll loop that owns it. The
// only cross-thread surface is the server's dump-request flag, which lives
// in NetServer, not here.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/util/time.h"

namespace spotcache {

struct RequestTelemetryConfig {
  /// Span sampling period (rounded up to a power of two; 0 disables spans).
  uint32_t span_sample_every = 256;
  /// Latency-histogram sampling period (power of two; 0 disables, 1 = every
  /// request).
  uint32_t latency_sample_every = 16;
  /// Flight-recorder capacity in span records.
  uint32_t flight_ring_capacity = 4096;
  /// Auto-capture threshold: a request slower than this (microseconds,
  /// measured from batch arrival to completion) is force-recorded and flags
  /// a flight-recorder dump. <= 0 disables auto-capture.
  int64_t slow_request_us = 50'000;
  /// Seed for the sampling hash (deterministic per seed).
  uint64_t seed = 0x5eed'cafe;
};

/// Coarse op class for the (op, outcome) latency histograms.
enum class TelemetryOp : uint8_t {
  kGet,
  kSet,
  kDelete,
  kTouch,
  kOther,
};

/// Per-request outcome: the serving path's verdict, worst-first for
/// multi-key retrievals (error > shed > backup > miss > hit).
enum class RequestOutcome : uint8_t {
  kHit,
  kMiss,
  kShed,
  kBackup,
  kError,
  kStored,
  kNotStored,
  kOther,
};

std::string_view ToString(TelemetryOp op);
std::string_view ToString(RequestOutcome o);

/// One recorded request span. Times are microseconds; t_start_us is on the
/// server's loop clock (microseconds since Run() began).
struct SpanRecord {
  int64_t t_start_us = 0;
  uint64_t conn_id = 0;
  TelemetryOp op = TelemetryOp::kOther;
  RequestOutcome outcome = RequestOutcome::kOther;
  bool full_span = false;  // phase stamps valid (span-sampled)
  bool slow = false;       // force-captured by the slow-request detector
  int64_t queue_us = 0;    // batch recv -> parse begin
  int64_t parse_us = 0;    // parse begin -> request materialized
  int64_t route_us = 0;    // ladder / router consults (0 without a system)
  int64_t store_us = 0;    // ItemStore ops + response assembly
  int64_t write_us = 0;    // this batch's flush (shared across its spans)
  int64_t total_us = 0;    // batch recv -> completion (+ write when full)
  uint32_t keys = 0;
  uint32_t value_bytes = 0;
};

class RequestTelemetry {
 public:
  /// `obs` must outlive the telemetry; histograms and counters resolve once
  /// here. A null obs records spans/ring only (no registry publication).
  RequestTelemetry(const RequestTelemetryConfig& config, Obs* obs);

  const RequestTelemetryConfig& config() const { return config_; }

  /// Steady-clock microseconds — the one clock every stamp uses. The server
  /// loop shares it so loop events and spans land on the same timeline.
  static int64_t NowMicros();
  /// Sets the zero point of emitted t_start_us values (the server passes its
  /// Run() start stamp, making span times "microseconds since Run began").
  void SetOrigin(int64_t origin_us) { origin_us_ = origin_us; }

  // --- Batch lifecycle (one recv/drain batch on one connection). --------

  /// Stamps the batch arrival time; all latencies measured until EndBatch
  /// are relative to it.
  void BeginBatch(uint64_t conn_id);

  /// True when spans finished in this batch are waiting for their write
  /// stamp (tells the server whether timing the flush is worth a clock read).
  bool batch_has_spans() const { return !batch_spans_.empty(); }

  /// Attributes this batch's response flush to every span it finalized and
  /// commits them (ring + tracer). `write_us` may be 0 (nothing flushed).
  void EndBatch(int64_t write_us);

  // --- Request lifecycle (inside a batch). ------------------------------

  /// Advances the sampler and opens a request record if sampled. Call
  /// immediately before attempting to parse the next request. Inline so the
  /// unsampled majority pays a hash and a branch, not a function call.
  void BeginRequest() {
    ++requests_seen_;
    const uint64_t h = Mix(sample_state_ + requests_seen_);
    if (((h & span_mask_) != 0 || config_.span_sample_every == 0) &&
        ((h & latency_mask_) != 0 || config_.latency_sample_every == 0)) {
      mode_ = Mode::kNone;
      return;
    }
    BeginSampledRequest(h);
  }
  /// True when the current request is span-sampled (phase stamps wanted).
  bool span_active() const { return mode_ == Mode::kSpan; }

  /// The parser produced a complete request.
  void OnParsed(TelemetryOp op, uint32_t key_count) {
    if (mode_ != Mode::kNone) {
      OnParsedSampled(op, key_count);
    }
  }
  /// Adds ladder/router time (span-sampled requests only; accumulated
  /// across the keys of a multi-get).
  void AddRouteTime(int64_t route_us);
  /// The request finished executing (response assembled, not yet written).
  void OnExecuted(RequestOutcome outcome, uint32_t value_bytes) {
    if (mode_ != Mode::kNone) {
      OnExecutedSampled(outcome, value_bytes);
    }
  }
  /// The parser needed more bytes or hit a protocol error mid-request: the
  /// open record is discarded (errors with a complete command line should
  /// instead run OnParsed + OnExecuted(kError)).
  void OnAbandoned() { mode_ = Mode::kNone; }

  // --- Flight recorder. -------------------------------------------------

  /// True when a slow request asked for a dump since the last Clear.
  bool dump_pending() const { return dump_pending_; }
  void clear_dump_pending() { dump_pending_ = false; }

  size_t ring_size() const { return ring_count_; }
  /// Oldest-to-newest snapshot of the ring.
  std::vector<SpanRecord> RingSnapshot() const;
  /// The ring as `request_span` JSONL lines (oldest first), one per record —
  /// the same shape the EventTracer emits for live span events.
  std::string RenderFlightRecorderJsonl() const;

  // --- Introspection (stats / tests). -----------------------------------

  uint64_t requests_seen() const { return requests_seen_; }
  uint64_t spans_recorded() const { return spans_recorded_; }
  uint64_t latencies_recorded() const { return latencies_recorded_; }
  uint64_t slow_requests() const { return slow_requests_; }

  /// Serializes one span record as a JSONL `request_span` line (no trailing
  /// newline). Shared by the tracer path, the ring dump, and tests.
  static std::string RenderSpanJson(const SpanRecord& span);

 private:
  enum class Mode : uint8_t { kNone, kLatency, kSpan };

  /// splitmix64 finalizer: decorrelates the sampling decision from the
  /// request counter so fixed batch layouts cannot alias the lattice.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Out-of-line slow paths for the sampled minority.
  void BeginSampledRequest(uint64_t hash);
  void OnParsedSampled(TelemetryOp op, uint32_t key_count);
  void OnExecutedSampled(RequestOutcome outcome, uint32_t value_bytes);

  void CommitRecord(SpanRecord record);
  Histogram* HistogramFor(TelemetryOp op, RequestOutcome outcome);

  static constexpr size_t kNumOps = 5;
  static constexpr size_t kNumOutcomes = 8;

  RequestTelemetryConfig config_;
  Obs* obs_;
  uint32_t span_mask_ = 0;     // sample when (hash & mask) == 0
  uint32_t latency_mask_ = 0;  // ditto (span-sampled implies latency)
  uint64_t sample_state_;
  int64_t origin_us_ = 0;

  // Batch state.
  int64_t batch_t0_us_ = 0;
  uint64_t conn_id_ = 0;
  // Spans completed in this batch, waiting for the flush stamp.
  std::vector<SpanRecord> batch_spans_;

  // Open request state.
  Mode mode_ = Mode::kNone;
  SpanRecord current_;
  int64_t t_begin_us_ = 0;   // steady-clock stamp at BeginRequest
  int64_t t_parsed_us_ = 0;  // steady-clock stamp at OnParsed

  // Flight recorder ring.
  std::vector<SpanRecord> ring_;
  size_t ring_next_ = 0;
  size_t ring_count_ = 0;
  bool dump_pending_ = false;

  uint64_t requests_seen_ = 0;
  uint64_t spans_recorded_ = 0;
  uint64_t latencies_recorded_ = 0;
  uint64_t slow_requests_ = 0;

  // Lazily resolved per-(op, outcome) latency histograms (seconds).
  Histogram* hists_[kNumOps][kNumOutcomes] = {};
  Counter* spans_counter_ = nullptr;
  Counter* slow_counter_ = nullptr;
};

}  // namespace spotcache
