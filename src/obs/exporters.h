// Exporters: JSONL event stream, CSV sim-time series, and a Prometheus-style
// text snapshot. JSONL and CSV are pure functions of sim-time data and are
// byte-identical across deterministic replays; the Prometheus snapshot also
// includes wall-clock timing histograms (SPOTCACHE_TIMED), which naturally
// vary run to run.

#pragma once

#include <string>
#include <string_view>

#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"

namespace spotcache {

/// One JSON object per line, fields in emission order:
///   {"t_us":123,"type":"replan","lambda_hat":320000,...}
std::string ToJsonl(const EventTracer& tracer);

/// Long-format CSV over all registered series, deterministically ordered by
/// (series name, sample index): `t_us,series,value` with a header row.
std::string ToCsvTimeSeries(const MetricsRegistry& registry);

/// Prometheus text exposition. Metric names are sanitized ('/', '.', '-' →
/// '_'); labels render as {k="v"} with backslash/quote/newline escaping.
/// Non-finite gauge values are rejected (the line is skipped). Histograms
/// expose cumulative _bucket{le=...} series over the LogHistogram geometry
/// (empty buckets elided, closed by le="+Inf"), plus _sum, _count, _mean,
/// _p50, _p95, _p99, and _max.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// Overwrites `path` with `content`; returns false (and logs) on failure.
bool WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace spotcache
