#include "src/obs/trace.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace spotcache {

std::string_view TraceEvent::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) {
      return v;
    }
  }
  return {};
}

std::string EventTracer::JsonString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string EventTracer::JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";  // JSON has no inf/nan
  }
  // Shortest round-trip representation: deterministic and human-readable.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string EventTracer::JsonNumber(int64_t v) { return std::to_string(v); }

void EventTracer::Push(SimTime t, std::string_view type,
                       std::vector<std::pair<std::string, std::string>> fields) {
  TraceEvent ev;
  ev.time = t;
  ev.type = std::string(type);
  ev.fields = std::move(fields);
  events_.push_back(std::move(ev));
}

void EventTracer::BidPlaced(SimTime t, std::string_view market, double bid,
                            double price) {
  if (!enabled_) return;
  Push(t, "bid_placed",
       {{"market", JsonString(market)},
        {"bid", JsonNumber(bid)},
        {"price", JsonNumber(price)}});
}

void EventTracer::BidRejected(SimTime t, std::string_view market, double bid,
                              double price) {
  if (!enabled_) return;
  Push(t, "bid_rejected",
       {{"market", JsonString(market)},
        {"bid", JsonNumber(bid)},
        {"price", JsonNumber(price)}});
}

void EventTracer::Launched(SimTime t, uint64_t instance, std::string_view kind,
                           std::string_view type, std::string_view tag) {
  if (!enabled_) return;
  Push(t, "launch",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))},
        {"kind", JsonString(kind)},
        {"instance_type", JsonString(type)},
        {"tag", JsonString(tag)}});
}

void EventTracer::LaunchFailed(SimTime t, std::string_view kind,
                               std::string_view tag) {
  if (!enabled_) return;
  Push(t, "launch_failed",
       {{"kind", JsonString(kind)}, {"tag", JsonString(tag)}});
}

void EventTracer::RevocationWarning(SimTime t, uint64_t instance,
                                    std::string_view market, bool late) {
  if (!enabled_) return;
  Push(t, "revocation_warning",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))},
        {"market", JsonString(market)},
        {"late", late ? "true" : "false"}});
}

void EventTracer::Revocation(SimTime t, uint64_t instance,
                             std::string_view market) {
  if (!enabled_) return;
  Push(t, "revocation",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))},
        {"market", JsonString(market)}});
}

void EventTracer::BackupLoss(SimTime t, uint64_t instance) {
  if (!enabled_) return;
  Push(t, "backup_loss",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))}});
}

void EventTracer::TokenExhaustion(SimTime t, uint64_t instance,
                                  std::string_view source) {
  if (!enabled_) return;
  Push(t, "token_exhaustion",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))},
        {"source", JsonString(source)}});
}

void EventTracer::Replan(SimTime t, double lambda_hat, double ws_gb,
                         bool feasible, double objective, int total_instances,
                         bool fallback) {
  if (!enabled_) return;
  Push(t, "replan",
       {{"lambda_hat", JsonNumber(lambda_hat)},
        {"ws_gb", JsonNumber(ws_gb)},
        {"feasible", feasible ? "true" : "false"},
        {"objective", JsonNumber(objective)},
        {"instances", JsonNumber(static_cast<int64_t>(total_instances))},
        {"fallback", fallback ? "true" : "false"}});
}

void EventTracer::ReplanItem(SimTime t, std::string_view option, int count,
                             double x, double y) {
  if (!enabled_) return;
  Push(t, "replan_item",
       {{"option", JsonString(option)},
        {"count", JsonNumber(static_cast<int64_t>(count))},
        {"x", JsonNumber(x)},
        {"y", JsonNumber(y)}});
}

void EventTracer::WarmupStart(SimTime t, uint64_t instance,
                              std::string_view case_label, double hot_gb,
                              double cold_gb, SimTime ready) {
  if (!enabled_) return;
  Push(t, "warmup_start",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))},
        {"case", JsonString(case_label)},
        {"hot_gb", JsonNumber(hot_gb)},
        {"cold_gb", JsonNumber(cold_gb)},
        {"ready_us", JsonNumber(ready.micros())}});
}

void EventTracer::WarmupEnd(SimTime t, uint64_t instance,
                            std::string_view case_label) {
  if (!enabled_) return;
  Push(t, "warmup_end",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))},
        {"case", JsonString(case_label)}});
}

void EventTracer::ReplacementFailed(SimTime t, uint64_t instance) {
  if (!enabled_) return;
  Push(t, "replacement_failed",
       {{"instance", JsonNumber(static_cast<int64_t>(instance))}});
}

void EventTracer::MarketCooldown(SimTime t, std::string_view option,
                                 SimTime until) {
  if (!enabled_) return;
  Push(t, "market_cooldown",
       {{"option", JsonString(option)}, {"until_us", JsonNumber(until.micros())}});
}

void EventTracer::BreakerTransition(SimTime t, uint64_t node,
                                    std::string_view from,
                                    std::string_view to) {
  if (!enabled_) return;
  Push(t, "breaker_transition",
       {{"node", JsonNumber(static_cast<int64_t>(node))},
        {"from", JsonString(from)},
        {"to", JsonString(to)}});
}

void EventTracer::RetryAttempt(SimTime t, uint64_t op, int attempt,
                               Duration delay) {
  if (!enabled_) return;
  Push(t, "retry_attempt",
       {{"op", JsonNumber(static_cast<int64_t>(op))},
        {"attempt", JsonNumber(static_cast<int64_t>(attempt))},
        {"delay_us", JsonNumber(delay.micros())}});
}

void EventTracer::Shed(SimTime t, std::string_view scope, double fraction) {
  if (!enabled_) return;
  Push(t, "shed",
       {{"scope", JsonString(scope)}, {"fraction", JsonNumber(fraction)}});
}

void EventTracer::Custom(SimTime t, std::string_view type,
                         std::vector<std::pair<std::string, std::string>> fields) {
  if (!enabled_) return;
  Push(t, type, std::move(fields));
}

}  // namespace spotcache
