// Structured event tracer: typed simulation events keyed by SimTime.
//
// Every event is recorded with its sim-clock timestamp and a flat set of
// (key, JSON-encoded value) fields, so the JSONL export of two runs with the
// same (config, seed) is byte-identical — no wall-clock, no pointers, no
// iteration-order dependence. Events are appended in program order; warm-up
// completion events are future-dated (their `t_us` is the predicted end), so
// a stream is not necessarily sorted by time.
//
// The typed recorders below cover the control-loop vocabulary: bids,
// launches, revocation warnings/revocations, replan decisions (chosen x/y
// fractions and LP objective), warm-up windows with the paper's Fig 4 case
// labels (1a / 1b / 2), token-bucket exhaustion, and market cooldowns.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/time.h"

namespace spotcache {

struct TraceEvent {
  SimTime time;
  std::string type;
  /// (key, raw JSON value fragment) pairs, in emission order.
  std::vector<std::pair<std::string, std::string>> fields;

  /// Convenience for tests/tools: the raw fragment for `key`, or "" if absent.
  std::string_view Field(std::string_view key) const;
};

class EventTracer {
 public:
  void set_enabled(bool e) { enabled_ = e; }
  bool enabled() const { return enabled_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // --- Typed recorders (all no-ops when disabled). ---

  /// A spot request whose bid cleared the current price.
  void BidPlaced(SimTime t, std::string_view market, double bid, double price);
  /// A spot request rejected outright (bid below the market price).
  void BidRejected(SimTime t, std::string_view market, double bid,
                   double price);
  void Launched(SimTime t, uint64_t instance, std::string_view kind,
                std::string_view type, std::string_view tag);
  /// A launch rejected by an injected transient outage.
  void LaunchFailed(SimTime t, std::string_view kind, std::string_view tag);
  void RevocationWarning(SimTime t, uint64_t instance, std::string_view market,
                         bool late);
  void Revocation(SimTime t, uint64_t instance, std::string_view market);
  /// A burstable backup killed by fault injection.
  void BackupLoss(SimTime t, uint64_t instance);
  /// A token bucket running dry; `source` says where ("fault_drain",
  /// "warmup_copy", "recovery").
  void TokenExhaustion(SimTime t, uint64_t instance, std::string_view source);

  /// One replan decision: demand inputs, feasibility, the relaxed LP
  /// objective, and whether the on-demand-only fallback had to be used.
  /// Chosen per-option fractions follow as ReplanItem events at the same t.
  void Replan(SimTime t, double lambda_hat, double ws_gb, bool feasible,
              double objective, int total_instances, bool fallback);
  /// One chosen (option, count, x, y) of the replan at time t.
  void ReplanItem(SimTime t, std::string_view option, int count, double x,
                  double y);

  /// Warm-up window opened for a revoked instance. `case_label` is the
  /// paper's Fig 4 breakdown: "1a" (warned, replacement ready at revocation),
  /// "1b" (warned, replacement still booting), "2" (no warning).
  void WarmupStart(SimTime t, uint64_t instance, std::string_view case_label,
                   double hot_gb, double cold_gb, SimTime ready);
  /// Predicted end of that warm-up (future-dated at emission).
  void WarmupEnd(SimTime t, uint64_t instance, std::string_view case_label);
  /// Replacement launch failed inside an outage: shard stays degraded.
  void ReplacementFailed(SimTime t, uint64_t instance);

  /// Controller put a market option in post-revocation cooldown.
  void MarketCooldown(SimTime t, std::string_view option, SimTime until);

  // --- Resilience-layer vocabulary. ---

  /// A circuit breaker changed state (closed / open / half_open).
  void BreakerTransition(SimTime t, uint64_t node, std::string_view from,
                         std::string_view to);
  /// One scheduled retry of operation `op` (its `attempt`-th, 1-based),
  /// delayed by `delay` under the retry policy.
  void RetryAttempt(SimTime t, uint64_t op, int attempt, Duration delay);
  /// Admission control shed traffic; `scope` says where ("request", "cluster",
  /// "recovery") and `fraction` is the shed fraction or realized drop rate.
  void Shed(SimTime t, std::string_view scope, double fraction);

  /// Escape hatch for events outside the fixed vocabulary. `fields` values
  /// must already be JSON fragments (use JsonString / JsonNumber).
  void Custom(SimTime t, std::string_view type,
              std::vector<std::pair<std::string, std::string>> fields);

  // --- JSON fragment helpers (shared with the exporters). ---
  static std::string JsonString(std::string_view s);
  static std::string JsonNumber(double v);
  static std::string JsonNumber(int64_t v);

 private:
  void Push(SimTime t, std::string_view type,
            std::vector<std::pair<std::string, std::string>> fields);

  bool enabled_ = true;
  std::vector<TraceEvent> events_;
};

}  // namespace spotcache
