// Structured metrics registry: named counters, gauges, histograms, and
// sim-time series, organized by component-style names ("controller/plan_ms",
// "spot/revocations") with optional labels ({market=us-east-1c}).
//
// Design points:
//   * Get* returns a stable pointer — components resolve their metrics once
//     (at attach time) and then update through the pointer, so hot paths pay
//     one null check + one increment, never a map lookup.
//   * Iteration order is the lexicographic full-name order (std::map), so
//     every exporter snapshot is deterministic.
//   * Histograms are backed by util's LogHistogram (O(1) record, ~5 %
//     relative-error quantiles) — cheap enough for per-request recording.
//   * Series are keyed by SimTime, not wall time, so exported CSV streams are
//     bit-identical under deterministic replay.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/stats.h"
#include "src/util/time.h"

namespace spotcache {

/// Sorted-by-key (label, value) pairs; callers may pass them in any order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(int64_t n = 1) { value_ += n; }
  /// For porting pre-aggregated totals (e.g. FaultCounters) onto the registry.
  void Set(int64_t v) { value_ = v; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  void Record(double v) { hist_.Record(v); }
  uint64_t count() const { return hist_.count(); }
  double mean() const { return hist_.mean(); }
  double sum() const { return hist_.sum(); }
  double max_recorded() const { return hist_.max_recorded(); }
  double Quantile(double q) const { return hist_.Quantile(q); }
  /// Batched quantiles (ascending `qs`); one cumulative pass.
  std::vector<double> Quantiles(const std::vector<double>& qs) const {
    return hist_.Quantiles(qs);
  }

  /// Folds another histogram's samples into this one (exact on bucket
  /// counts; see LogHistogram::Merge). All registry histograms share the
  /// same bucket geometry, so any two are mergeable.
  void MergeFrom(const Histogram& other) { hist_.Merge(other.hist_); }
  /// The underlying log-bucketed histogram (per-connection recorders merge
  /// through this when aggregating outside a registry).
  const LogHistogram& log_histogram() const { return hist_; }

 private:
  LogHistogram hist_{1e-6, 1.05};
};

/// An append-only (sim time, value) series for CSV export.
struct MetricSeries {
  struct Point {
    int64_t t_us = 0;
    double value = 0.0;
  };
  std::vector<Point> points;
};

class MetricsRegistry {
 public:
  /// Canonical full name: `name` + "{k=v,...}" with labels sorted by key
  /// (empty labels add nothing). Two Get* calls with the same canonical name
  /// return the same object.
  static std::string FullName(std::string_view name, MetricLabels labels);

  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  Histogram* GetHistogram(std::string_view name, MetricLabels labels = {});

  /// Appends a sample to the named series (created on first use).
  void AddSample(std::string_view name, SimTime t, double value,
                 MetricLabels labels = {});

  /// Value of a counter, or 0 if it was never registered.
  int64_t CounterValue(std::string_view name, MetricLabels labels = {}) const;
  /// Value of a gauge, or 0.0 if it was never registered.
  double GaugeValue(std::string_view name, MetricLabels labels = {}) const;

  /// Deterministically ordered views for exporters.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, MetricSeries>& series() const { return series_; }

 private:
  // std::map: stable addresses across inserts (Get* pointers never dangle).
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, MetricSeries> series_;
};

}  // namespace spotcache
