// RAII scoped timers for profiling hot paths into registry histograms.
//
// Wall-clock timings go to the *registry* only, never to the event tracer:
// the JSONL trace must stay bit-identical under deterministic replay, while
// the registry snapshot is a profiling artifact of this particular run.
//
// Usage:
//   Histogram* solve_ms_;  // resolved once at attach time; null = disabled
//   ...
//   SPOTCACHE_TIMED(solve_ms_);  // times the rest of the enclosing scope

#pragma once

#include <chrono>

#include "src/obs/metrics_registry.h"

namespace spotcache {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      const auto end = std::chrono::steady_clock::now();
      hist_->Record(
          std::chrono::duration<double, std::milli>(end - start_).count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

#define SPOTCACHE_TIMED_CONCAT2(a, b) a##b
#define SPOTCACHE_TIMED_CONCAT(a, b) SPOTCACHE_TIMED_CONCAT2(a, b)
/// Times the rest of the enclosing scope into `hist` (a Histogram*, may be
/// null, in which case the timer is a no-op and reads no clock).
#define SPOTCACHE_TIMED(hist) \
  ::spotcache::ScopedTimer SPOTCACHE_TIMED_CONCAT(spotcache_timed_, \
                                                  __LINE__)(hist)

}  // namespace spotcache
