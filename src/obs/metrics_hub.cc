#include "src/obs/metrics_hub.h"

#include "src/obs/exporters.h"

namespace spotcache {

MetricsHub::MetricsHub(size_t slots, size_t shards)
    : snapshots_(slots), shards_(shards) {}

void MetricsHub::Publish(size_t slot, const MetricsRegistry& registry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshots_[slot] = registry;
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

MetricsRegistry MetricsHub::Aggregate() const {
  MetricsRegistry agg;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const MetricsRegistry& snap : snapshots_) {
      // Snapshot keys are already canonical full names (labels folded in by
      // FullName at registration time), so re-registering by the full key
      // lands on the same metric.
      for (const auto& [name, counter] : snap.counters()) {
        agg.GetCounter(name)->Increment(counter.value());
      }
      for (const auto& [name, gauge] : snap.gauges()) {
        agg.GetGauge(name)->Add(gauge.value());
      }
      for (const auto& [name, hist] : snap.histograms()) {
        agg.GetHistogram(name)->MergeFrom(hist);
      }
    }
  }
  agg.GetGauge("obs/flush_epoch")->Set(static_cast<double>(epoch()));
  agg.GetGauge("obs/shards")->Set(static_cast<double>(shards_));
  return agg;
}

std::string MetricsHub::RenderPrometheus() const {
  return ToPrometheusText(Aggregate());
}

}  // namespace spotcache
