// MetricsHub: epoch-snapshot aggregation of per-shard metric registries.
//
// Each reactor shard owns a private MetricsRegistry that only its own thread
// touches — the per-request hot path stays lock- and atomic-free. Off the
// hot path (a periodic epoll-timeout tick, and right before answering a
// scrape), a shard publishes a full copy of its registry into its hub slot
// under the hub mutex and bumps the flush epoch. A scrape aggregates the
// published slots — counter sums, gauge sums, histogram merges — so it only
// ever observes registry states that were complete at some epoch boundary,
// never a counter mid-update. The epoch is exported as the
// `obs/flush_epoch` gauge so tests (and operators) can verify snapshots are
// advancing.
//
// Aggregation semantics: counters and histograms add exactly (every
// registry histogram shares one LogHistogram geometry, so merges are
// bucket-exact). Gauges sum, which is exact for additive gauges and an
// upper bound for per-shard high-water marks (documented in DESIGN.md
// "Sharding").

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"

namespace spotcache {

class MetricsHub {
 public:
  /// `slots` independent publishers (one per shard, plus any extra slots the
  /// server dedicates to shared control-plane registries). `shards` is what
  /// the `obs/shards` meta-gauge reports — the serving-shard count, which is
  /// smaller than `slots` when control-plane slots exist.
  explicit MetricsHub(size_t slots, size_t shards);

  size_t slots() const { return snapshots_.size(); }

  /// Copies `registry` into `slot` under the hub lock and advances the
  /// flush epoch. Called by the owning thread only, off the hot path.
  void Publish(size_t slot, const MetricsRegistry& registry);

  /// Monotone count of completed Publish() calls.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Sums the published snapshots into one registry (plus the
  /// `obs/flush_epoch` and `obs/shards` meta-gauges).
  MetricsRegistry Aggregate() const;

  /// Prometheus text of Aggregate() — what the sharded scrape endpoint
  /// serves.
  std::string RenderPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::vector<MetricsRegistry> snapshots_;
  size_t shards_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace spotcache
